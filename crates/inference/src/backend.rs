//! Communication backends pluggable into the inference engine —
//! the paper swaps NCCL for MSCCL++ inside vLLM (§5.2).

use collective::RecoveryOutcome;
use hw::{BufferId, DataType, Machine, Rank, ReduceOp};
use mscclpp::{KernelTiming, Result, Setup};
use sim::Engine;

/// A tensor-parallel AllReduce provider.
pub trait CommBackend {
    /// Backend display name (used in reports).
    fn name(&self) -> &'static str;

    /// In-place AllReduce over all ranks' activation buffers.
    ///
    /// # Errors
    ///
    /// Propagates kernel deadlocks from the underlying stack.
    fn all_reduce(
        &self,
        engine: &mut Engine<Machine>,
        bufs: &[BufferId],
        count: usize,
        dtype: DataType,
    ) -> Result<KernelTiming>;

    /// Shrinks the backend's communicator after the given ranks died,
    /// returning the surviving group when the backend supports elastic
    /// recovery. The default — and backends without a recovery path —
    /// returns `None`, telling the serving loop to propagate the
    /// original failure.
    ///
    /// # Errors
    ///
    /// Propagates communicator-rebuild failures.
    fn shrink(&self, engine: &mut Engine<Machine>, dead: &[Rank]) -> Result<Option<Vec<Rank>>> {
        let _ = (engine, dead);
        Ok(None)
    }

    /// The communicator epoch, bumped by every successful shrink. The
    /// serving loop watches it to attribute recoveries.
    fn epoch(&self) -> u64 {
        0
    }
}

/// MSCCL++ (the `collective` crate's NCCL-compatible API).
#[derive(Debug, Default)]
pub struct MscclppBackend {
    comm: collective::CollComm,
}

impl MscclppBackend {
    /// Creates the backend.
    pub fn new() -> MscclppBackend {
        MscclppBackend::default()
    }
}

impl CommBackend for MscclppBackend {
    fn name(&self) -> &'static str {
        "MSCCL++"
    }

    fn all_reduce(
        &self,
        engine: &mut Engine<Machine>,
        bufs: &[BufferId],
        count: usize,
        dtype: DataType,
    ) -> Result<KernelTiming> {
        self.comm
            .all_reduce(engine, bufs, bufs, count, dtype, ReduceOp::Sum)
    }

    fn shrink(&self, engine: &mut Engine<Machine>, dead: &[Rank]) -> Result<Option<Vec<Rank>>> {
        let recovery = self.comm.shrink(engine, dead)?;
        // The serving AllReduce is in place, so the interrupted step is
        // reported `PartialDiscarded` — fine, the serving loop re-queues
        // the batch and recomputes the activations from scratch. Only a
        // group that cannot run collectives at all is unrecoverable.
        if recovery.outcome == RecoveryOutcome::Unrecoverable {
            return Ok(None);
        }
        Ok(Some(recovery.group))
    }

    fn epoch(&self) -> u64 {
        self.comm.epoch().0
    }
}

/// NCCL (the `ncclsim` baseline with its internal tuner).
#[derive(Debug)]
pub struct NcclBackend {
    comm: ncclsim::NcclComm,
    nodes: usize,
}

impl NcclBackend {
    /// Builds the NCCL communicator on the engine's machine.
    pub fn new(engine: &mut Engine<Machine>) -> NcclBackend {
        let nodes = engine.world().topology().nodes();
        let mut setup = Setup::new(engine);
        NcclBackend {
            comm: ncclsim::NcclComm::new(&mut setup, ncclsim::NcclConfig::nccl()),
            nodes,
        }
    }
}

impl CommBackend for NcclBackend {
    fn name(&self) -> &'static str {
        "NCCL"
    }

    fn all_reduce(
        &self,
        engine: &mut Engine<Machine>,
        bufs: &[BufferId],
        count: usize,
        dtype: DataType,
    ) -> Result<KernelTiming> {
        let choice = ncclsim::tune(count * dtype.size(), self.nodes);
        self.comm
            .all_reduce(engine, bufs, bufs, count, dtype, ReduceOp::Sum, choice)
    }
}

/// MSCCL (custom algorithms over the NCCL transport).
#[derive(Debug)]
pub struct MscclBackend {
    comm: msccl::MscclComm,
}

impl MscclBackend {
    /// Builds the MSCCL communicator on the engine's machine.
    pub fn new(engine: &mut Engine<Machine>) -> MscclBackend {
        let mut setup = Setup::new(engine);
        MscclBackend {
            comm: msccl::MscclComm::new(&mut setup, msccl::MscclConfig::default()),
        }
    }
}

impl CommBackend for MscclBackend {
    fn name(&self) -> &'static str {
        "MSCCL"
    }

    fn all_reduce(
        &self,
        engine: &mut Engine<Machine>,
        bufs: &[BufferId],
        count: usize,
        dtype: DataType,
    ) -> Result<KernelTiming> {
        self.comm
            .all_reduce(engine, bufs, bufs, count, dtype, ReduceOp::Sum, None)
    }
}
