//! The serving engine: tensor-parallel prefill and decode steps over the
//! simulated cluster (the paper's modified-vLLM setup, §5.2).
//!
//! Each decoder layer runs its per-GPU compute (roofline-timed, identical
//! across communication backends) followed by the two tensor-parallel
//! AllReduces (attention output projection and MLP down projection),
//! executed for real on the simulated communication stack. Decode uses
//! CUDA-graph semantics (no extra launch gaps between layers beyond the
//! kernel model), as in the paper's setup.

use hw::{BufferId, DataType, EnvKind, Machine, Rank};
use mscclpp::{run_kernels, KernelBuilder, Overheads, Result};
use sim::{Duration, Engine};

use crate::backend::CommBackend;
use crate::model::{layer_time, GpuPerf, ModelConfig};

/// Per-layer time spent in auxiliary kernels that the GEMM roofline does
/// not cover: paged attention (whose scattered KV reads run well below
/// peak HBM bandwidth), layer norms, rotary embeddings, and residual
/// adds. Identical across communication backends.
const AUX_PER_LAYER: Duration = Duration::from_ps(45_000_000); // 45 us

/// Maximum tokens processed per prefill chunk (vLLM-style chunked
/// prefill): bounds activation memory for long-prompt batches.
pub(crate) const PREFILL_CHUNK_TOKENS: usize = 8192;

/// Fraction of free HBM (after weights and activations) given to the
/// paged KV cache; the rest absorbs fragmentation and CUDA overheads,
/// matching vLLM's `gpu_memory_utilization` headroom.
const KV_FRACTION: f64 = 0.9;

/// One batch configuration of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchConfig {
    /// Batched requests.
    pub bsz: usize,
    /// Tokens per request (context length during decode).
    pub seqlen: usize,
}

impl std::fmt::Display for BatchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bsz={} seqlen={}", self.bsz, self.seqlen)
    }
}

/// Why a recovery happened, classified from where the dead ranks sat in
/// the tensor-parallel group at the moment of the failure.
///
/// The class determines how much of the communicator the shrink has to
/// rebuild — a member death renumbers one node's intra-node phase, a
/// leader death additionally re-elects the node's inter-node endpoint,
/// and a node death renumbers the whole inter-node phase — so recovery
/// latencies are reported per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// A rank died that was not its node's inter-node leader.
    Member,
    /// The lowest-ranked serving member of a node — its inter-node
    /// leader — died, forcing a leader re-election on that node.
    Leader,
    /// Every serving rank of one node died at once.
    Node,
    /// A live-but-slow rank was voluntarily evicted by the straggler
    /// quarantine (never produced by [`ServingEngine::recover`], which
    /// only sees dead ranks).
    Straggler,
}

impl FailureClass {
    /// All classes, in [`FailureClass::index`] order.
    pub const ALL: [FailureClass; 4] = [
        FailureClass::Member,
        FailureClass::Leader,
        FailureClass::Node,
        FailureClass::Straggler,
    ];

    /// Stable index into per-class report arrays.
    pub fn index(self) -> usize {
        match self {
            FailureClass::Member => 0,
            FailureClass::Leader => 1,
            FailureClass::Node => 2,
            FailureClass::Straggler => 3,
        }
    }

    /// Lowercase display name (used in benchmark output).
    pub fn name(self) -> &'static str {
        match self {
            FailureClass::Member => "member",
            FailureClass::Leader => "leader",
            FailureClass::Node => "node",
            FailureClass::Straggler => "straggler",
        }
    }
}

/// Timing breakdown of one inference step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Per-GPU compute time (identical across backends).
    pub compute_us: f64,
    /// Communication time (two AllReduces per layer).
    pub comm_us: f64,
}

impl StepReport {
    /// End-to-end step time.
    pub fn total_us(&self) -> f64 {
        self.compute_us + self.comm_us
    }
}

/// A Llama-style model served with tensor parallelism on one simulated
/// machine.
pub struct ServingEngine {
    engine: Engine<Machine>,
    model: ModelConfig,
    perf: GpuPerf,
    tp: usize,
    /// Ranks currently serving: all GPUs until a rank death shrinks the
    /// tensor-parallel group to the survivors.
    group: Vec<Rank>,
    /// Activation buffers (one per rank), sized for the largest step.
    act: Vec<BufferId>,
    act_cap: usize,
    ov: Overheads,
}

impl std::fmt::Debug for ServingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingEngine")
            .field("model", &self.model.name)
            .field("tp", &self.tp)
            .finish_non_exhaustive()
    }
}

impl ServingEngine {
    /// Builds the serving engine for `model` on `env`, with tensor
    /// parallelism over all GPUs of a single node (TP = 8, as in §5.2).
    ///
    /// `max_tokens` bounds the largest step (prefill tokens).
    pub fn new(env: EnvKind, model: ModelConfig, max_tokens: usize) -> ServingEngine {
        ServingEngine::with_fault_plan(env, model, max_tokens, None)
    }

    /// Like [`ServingEngine::new`], but installs `plan` (e.g. a scheduled
    /// rank death) before the machine is wired so faults act on the
    /// serving run from the first step.
    pub fn with_fault_plan(
        env: EnvKind,
        model: ModelConfig,
        max_tokens: usize,
        plan: Option<sim::FaultPlan>,
    ) -> ServingEngine {
        ServingEngine::with_cluster(env, 1, model, max_tokens, plan)
    }

    /// Like [`ServingEngine::with_fault_plan`], but serves at multi-node
    /// tensor parallelism: TP spans all GPUs of `nodes` nodes, so the
    /// per-layer AllReduces cross the inter-node fabric and a whole node
    /// can fail.
    pub fn with_cluster(
        env: EnvKind,
        nodes: usize,
        model: ModelConfig,
        max_tokens: usize,
        plan: Option<sim::FaultPlan>,
    ) -> ServingEngine {
        let mut engine = Engine::new(Machine::new(env.spec(nodes)));
        if let Some(plan) = plan {
            engine.set_fault_plan(plan);
        }
        hw::wire(&mut engine);
        let tp = engine.world().topology().world_size();
        // Prefill is chunked, so activations never exceed one chunk.
        let act_cap = max_tokens.min(PREFILL_CHUNK_TOKENS) * model.hidden * 2; // fp16
        let act = (0..tp)
            .map(|r| engine.world_mut().pool_mut().alloc(Rank(r), act_cap))
            .collect();
        ServingEngine {
            engine,
            model,
            perf: GpuPerf::for_env(env),
            tp,
            group: (0..tp).map(Rank).collect(),
            act,
            act_cap,
            ov: Overheads::mscclpp(),
        }
    }

    /// The simulated machine (e.g. to inspect memory).
    pub fn machine(&self) -> &Machine {
        self.engine.world()
    }

    /// Exclusive access to the simulation engine.
    pub fn engine_mut(&mut self) -> &mut Engine<Machine> {
        &mut self.engine
    }

    /// The current tensor-parallel degree (shrinks on rank death).
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// The model being served.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Tokens the paged KV cache can hold at the *current* tensor-parallel
    /// degree: the group's total HBM minus the (TP-invariant) weight
    /// bytes and per-rank activation buffers, derated by the
    /// fragmentation headroom, divided by the model's per-token KV
    /// footprint. Shrinking the group shrinks this — survivors hold more
    /// weight shards each, leaving less room for KV.
    pub fn kv_capacity_tokens(&self) -> usize {
        let total = self.perf.hbm_bytes as f64 * self.tp as f64;
        let weights = self.model.weight_bytes() as f64;
        let acts = (self.act_cap * self.tp) as f64;
        let free = (total - weights - acts).max(0.0);
        ((free * KV_FRACTION) / self.model.kv_bytes_per_token() as f64) as usize
    }

    /// Detects ranks the fault plan has killed and fails the serving
    /// group over to the survivors: the backend's communicator shrinks
    /// to a new epoch and subsequent steps run at the reduced
    /// tensor-parallel degree. Returns the failure class and the
    /// recovery latency in microseconds of virtual time — from the
    /// instant the first rank died to the shrunken communicator being
    /// ready — or `None` when no rank died or the backend cannot
    /// shrink.
    ///
    /// # Errors
    ///
    /// Propagates communicator-rebuild failures.
    pub fn recover(&mut self, backend: &dyn CommBackend) -> Result<Option<(FailureClass, f64)>> {
        let now = self.engine.now();
        let (dead, t_down) = {
            let Some(plan) = self.engine.fault_plan() else {
                return Ok(None);
            };
            let dead: Vec<Rank> = plan
                .dead_ranks_at(now)
                .into_iter()
                .map(Rank)
                .filter(|r| self.group.contains(r))
                .collect();
            let t_down = dead.iter().filter_map(|r| plan.rank_down_time(r.0)).min();
            (dead, t_down)
        };
        if dead.is_empty() {
            return Ok(None);
        }
        let class = self.classify(&dead);
        let Some(survivors) = backend.shrink(&mut self.engine, &dead)? else {
            return Ok(None);
        };
        self.tp = survivors.len();
        self.group = survivors;
        Ok(Some((
            class,
            (self.engine.now() - t_down.unwrap_or(now)).as_us(),
        )))
    }

    /// Classifies a set of deaths against the serving group as it stood
    /// before the shrink. Severity wins: if any node lost all its
    /// serving members it is a node failure; otherwise if any node lost
    /// its inter-node leader (lowest serving rank) it is a leader
    /// failure; otherwise a member failure.
    fn classify(&self, dead: &[Rank]) -> FailureClass {
        let topo = self.engine.world().topology();
        let mut class = FailureClass::Member;
        for node in 0..topo.nodes() {
            let members: Vec<Rank> = self
                .group
                .iter()
                .copied()
                .filter(|&r| topo.node_of(r) == node)
                .collect();
            if members.is_empty() || !members.iter().any(|r| dead.contains(r)) {
                continue;
            }
            if members.iter().all(|r| dead.contains(r)) {
                return FailureClass::Node;
            }
            if dead.contains(&members[0]) {
                class = FailureClass::Leader;
            }
        }
        class
    }

    /// Runs the per-GPU compute of one layer as a kernel on every
    /// surviving rank.
    fn run_compute(&mut self, dur: Duration) -> Result<f64> {
        let kernels: Vec<_> = self
            .group
            .iter()
            .map(|&r| {
                let mut kb = KernelBuilder::new(r);
                kb.block(0).compute(dur);
                kb.build()
            })
            .collect();
        let t = run_kernels(&mut self.engine, &kernels, &self.ov)?;
        Ok(t.elapsed().as_us())
    }

    /// Times one transformer step with `tokens` live tokens and `batch`
    /// sequences of mean context `context`.
    fn step(
        &mut self,
        backend: &dyn CommBackend,
        tokens: usize,
        context: usize,
        batch: usize,
    ) -> Result<StepReport> {
        let count = tokens * self.model.hidden; // fp16 elements
        assert!(
            count * 2 <= self.act_cap,
            "step of {tokens} tokens exceeds engine capacity"
        );
        let t_layer = layer_time(&self.model, self.perf, self.tp, tokens, context, batch);
        // Attention and MLP each take roughly half the layer compute
        // (plus the non-GEMM auxiliary kernels) and each end in a
        // tensor-parallel AllReduce.
        let half = Duration::from_ps((t_layer + AUX_PER_LAYER).as_ps() / 2);

        // One layer measured in-simulation; the remaining layers repeat
        // the identical schedule (CUDA-graph steady state).
        let mut compute_us = 0.0;
        let mut comm_us = 0.0;
        for _ in 0..2 {
            compute_us += self.run_compute(half)?;
            let t = backend.all_reduce(&mut self.engine, &self.act, count, DataType::F16)?;
            comm_us += t.elapsed().as_us();
        }
        Ok(StepReport {
            compute_us: compute_us * self.model.layers as f64,
            comm_us: comm_us * self.model.layers as f64,
        })
    }

    /// Times one decode step (one new token per request).
    ///
    /// # Errors
    ///
    /// Propagates kernel deadlocks from the communication stack.
    pub fn decode_step(
        &mut self,
        backend: &dyn CommBackend,
        batch: BatchConfig,
    ) -> Result<StepReport> {
        self.step(backend, batch.bsz, batch.seqlen, batch.bsz)
    }

    /// Times the prefill of a full batch (all prompt tokens at once).
    ///
    /// # Errors
    ///
    /// Propagates kernel deadlocks from the communication stack.
    pub fn prefill(&mut self, backend: &dyn CommBackend, batch: BatchConfig) -> Result<StepReport> {
        self.prefill_tokens(backend, batch.bsz * batch.seqlen, batch.bsz)
    }

    /// Times the prefill of exactly `tokens` prompt tokens spread over
    /// `bsz` requests — the billing primitive behind [`ServingEngine::prefill`]
    /// and the continuous-batching scheduler. Unlike a
    /// mean-sequence-length [`BatchConfig`], this charges the *true*
    /// per-request token sum, so a batch mixing a 1-token and a
    /// 4096-token prompt is billed 4097 tokens, not a rounded mean.
    ///
    /// # Errors
    ///
    /// Propagates kernel deadlocks from the communication stack.
    pub fn prefill_tokens(
        &mut self,
        backend: &dyn CommBackend,
        tokens: usize,
        bsz: usize,
    ) -> Result<StepReport> {
        // Chunked prefill (as vLLM schedules long prompts): process the
        // prompt tokens in fixed-size chunks so activation buffers stay
        // bounded.
        let mut report = StepReport {
            compute_us: 0.0,
            comm_us: 0.0,
        };
        let mut remaining = tokens;
        while remaining > 0 {
            let chunk = remaining.min(PREFILL_CHUNK_TOKENS);
            let r = self.step(backend, chunk, 0, bsz.max(1))?;
            report.compute_us += r.compute_us;
            report.comm_us += r.comm_us;
            remaining -= chunk;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MscclppBackend, NcclBackend};

    #[test]
    fn decode_speedup_in_paper_band() {
        let model = ModelConfig::llama2_70b();
        let batch = BatchConfig {
            bsz: 32,
            seqlen: 512,
        };
        let mut e1 = ServingEngine::new(EnvKind::A100_80G, model.clone(), 64 * 2048);
        let nccl = NcclBackend::new(e1.engine_mut());
        let nccl_step = e1.decode_step(&nccl, batch).unwrap();

        let mut e2 = ServingEngine::new(EnvKind::A100_80G, model, 64 * 2048);
        let pp = MscclppBackend::new();
        let pp_step = e2.decode_step(&pp, batch).unwrap();

        assert!(
            (pp_step.compute_us - nccl_step.compute_us).abs() / nccl_step.compute_us < 0.01,
            "compute must be backend-independent"
        );
        assert!(pp_step.comm_us < nccl_step.comm_us);
        let speedup = nccl_step.total_us() / pp_step.total_us() - 1.0;
        assert!(
            (0.02..0.20).contains(&speedup),
            "decode speedup {speedup:.3} outside plausible band \
             (nccl {:.0}us vs mscclpp {:.0}us)",
            nccl_step.total_us(),
            pp_step.total_us()
        );
    }

    #[test]
    fn prefill_speedup_smaller_than_decode() {
        let model = ModelConfig::llama2_70b();
        let batch = BatchConfig {
            bsz: 8,
            seqlen: 512,
        };
        let mut e1 = ServingEngine::new(EnvKind::A100_80G, model.clone(), 8 * 512);
        let nccl = NcclBackend::new(e1.engine_mut());
        let nccl_prefill = e1.prefill(&nccl, batch).unwrap();
        let nccl_decode = e1.decode_step(&nccl, batch).unwrap();

        let mut e2 = ServingEngine::new(EnvKind::A100_80G, model, 8 * 512);
        let pp = MscclppBackend::new();
        let pp_prefill = e2.prefill(&pp, batch).unwrap();
        let pp_decode = e2.decode_step(&pp, batch).unwrap();

        let s_prefill = nccl_prefill.total_us() / pp_prefill.total_us() - 1.0;
        let s_decode = nccl_decode.total_us() / pp_decode.total_us() - 1.0;
        assert!(
            s_prefill < s_decode,
            "prefill speedup {s_prefill:.3} should be below decode {s_decode:.3} (§5.2)"
        );
        assert!(
            s_prefill < 0.08,
            "prefill speedup should be ≤6%: {s_prefill:.3}"
        );
    }
}

#[cfg(test)]
mod cross_env_tests {
    use super::*;
    use crate::backend::MscclppBackend;
    use crate::model::ModelConfig;

    #[test]
    fn h100_decodes_faster_than_a100() {
        let model = ModelConfig::llama2_70b();
        let batch = BatchConfig {
            bsz: 16,
            seqlen: 512,
        };
        let backend = MscclppBackend::new();
        let mut a100 = ServingEngine::new(EnvKind::A100_80G, model.clone(), 16 * 512);
        let t_a100 = a100.decode_step(&backend, batch).unwrap().total_us();
        let backend2 = MscclppBackend::new();
        let mut h100 = ServingEngine::new(EnvKind::H100, model, 16 * 512);
        let t_h100 = h100.decode_step(&backend2, batch).unwrap().total_us();
        assert!(
            t_h100 < t_a100 * 0.8,
            "H100 ({t_h100}us) should be well under A100 ({t_a100}us)"
        );
    }
}
