//! The SLO-aware continuous-batching scheduler.
//!
//! Open-loop arrivals flow through admission ([`crate::admission`]) into a
//! waiting queue, join the running batch when their worst-case KV
//! reservation fits ([`crate::kv`]), are prefilled in chunks billed at
//! their *true* per-request token counts, and then decode one token per
//! iteration until done. Every admitted request reaches exactly one
//! typed terminal state — completed, timed out, or evicted — the loop
//! never abandons work silently and never returns `Err` for overload.
//!
//! Robustness behavior under rank death: the communicator shrinks
//! ([`ServingEngine::recover`]), the paged KV pool loses every device
//! block (each block is sharded across all TP ranks), and displaced
//! requests re-enter through a priority recovery queue — restoring from
//! a host spill copy when one exists, re-prefilling their full context
//! otherwise. If the shrunken pool can never fit a request again, it
//! ends `evicted`, not `Err`. When admission is enabled, fresh arrivals
//! keep flowing through the same shed/reject policy, so the degraded
//! engine sheds load instead of collapsing.

use std::collections::VecDeque;

use mscclpp::{Error, Result};

use crate::admission::{Admission, AdmissionConfig, Decision, ShedReason};
use crate::backend::CommBackend;
use crate::engine::{BatchConfig, ServingEngine, PREFILL_CHUNK_TOKENS};
use crate::kv::{KvConfig, KvError, PagedKvManager};
use crate::rtrace::{Phase, RequestTracer, SloMiss, StepLink, Terminal};
use crate::serve::{LatencyStats, Request, ServeObservation, ServeReport};

/// Effective host<->device bandwidth for KV spill/restore transfers, in
/// bytes per microsecond (~25 GB/s of pinned-memory PCIe).
const HOST_LINK_BYTES_PER_US: f64 = 25_000.0;

/// Per-request latency service-level objectives, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Time-to-first-token budget (arrival → first generated token).
    pub ttft_us: f64,
    /// Time-per-output-token budget (mean inter-token gap after the
    /// first).
    pub tpot_us: f64,
}

impl SloSpec {
    /// No deadlines: every completion counts toward goodput.
    pub fn unbounded() -> SloSpec {
        SloSpec {
            ttft_us: f64::INFINITY,
            tpot_us: f64::INFINITY,
        }
    }

    /// Explicit budgets.
    pub fn new(ttft_us: f64, tpot_us: f64) -> SloSpec {
        SloSpec { ttft_us, tpot_us }
    }
}

/// Observability knobs of one serving run (DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserveConfig {
    /// Record per-request causal timelines and SLO-miss blame tilings
    /// ([`crate::rtrace`]). On by default — the overhead is pinned ≤5%
    /// by the perf gate; turn off only for overhead A/B measurements.
    pub rtrace: bool,
    /// Periodic virtual-time telemetry sampling over the engine's
    /// metrics ([`sim::Sampler`]); `None` (the default) samples nothing.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for ObserveConfig {
    fn default() -> ObserveConfig {
        ObserveConfig {
            rtrace: true,
            telemetry: None,
        }
    }
}

/// Shape of the serving telemetry sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Serving-clock distance between samples, in microseconds.
    pub period_us: f64,
    /// Ring capacity in samples (oldest overwritten when full).
    pub capacity: usize,
}

impl TelemetryConfig {
    /// A sampler taking one sample every `period_us`, keeping the most
    /// recent `capacity` samples.
    pub fn new(period_us: f64, capacity: usize) -> TelemetryConfig {
        TelemetryConfig {
            period_us,
            capacity,
        }
    }
}

/// Full configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Maximum concurrently running (prefilling + decoding) requests.
    pub max_batch: usize,
    /// Latency SLOs; goodput counts completions that met both.
    pub slo: SloSpec,
    /// Admission policy for arrivals.
    pub admission: AdmissionConfig,
    /// KV pool shape. `total_blocks == 0` derives the pool from the
    /// engine's HBM capacity model
    /// ([`ServingEngine::kv_capacity_tokens`]), re-derived after every
    /// shrink.
    pub kv: KvConfig,
    /// Hard wall-clock budget per admitted request (arrival → terminal
    /// state): older requests end `timed_out`. Infinite by default.
    pub timeout_us: f64,
    /// Seed for the admission policy's deterministic shed RNG.
    pub seed: u64,
    /// Observability: request timelines and telemetry sampling.
    pub observe: ObserveConfig,
}

impl ServeConfig {
    /// The legacy open-loop behavior: admit everything, no deadlines —
    /// what [`crate::serve_trace`] runs.
    pub fn permissive(max_batch: usize) -> ServeConfig {
        ServeConfig {
            max_batch,
            slo: SloSpec::unbounded(),
            admission: AdmissionConfig::disabled(),
            kv: KvConfig::default(),
            timeout_us: f64::INFINITY,
            seed: 0,
            observe: ObserveConfig::default(),
        }
    }

    /// SLO-aware serving with the default admission policy.
    pub fn slo_aware(max_batch: usize, slo: SloSpec) -> ServeConfig {
        ServeConfig {
            max_batch,
            slo,
            admission: AdmissionConfig::slo_aware(),
            kv: KvConfig::default(),
            timeout_us: f64::INFINITY,
            seed: 0,
            observe: ObserveConfig::default(),
        }
    }
}

/// Serving-clock microseconds viewed as integer picoseconds — the exact
/// currency of blame charging (see [`crate::rtrace`]). `round` is
/// monotone, so a nondecreasing `clock_us` never charges backwards.
fn ps(us: f64) -> u64 {
    (us * 1e6).round() as u64
}

/// One admitted request's scheduler state.
#[derive(Debug, Clone)]
struct Job {
    id: u64,
    prompt: usize,
    generate: usize,
    arrival_us: f64,
    prefix: Option<(u64, usize)>,
    /// Prompt tokens covered by a live prefix-cache hit (0 after a rank
    /// death clears the cache).
    prefix_hit: usize,
    /// Tokens generated so far.
    produced: usize,
    /// Device-resident KV tokens this job owns (beyond the prefix hit).
    own_ready: usize,
    /// Tokens backed by a host spill copy (restorable without
    /// recomputation); 0 when no copy exists.
    host_tokens: usize,
    first_token_us: Option<f64>,
    /// Whether this job's prefix is already in (or absent from) the
    /// cache — set after publishing, on a hit, or when prefix-less.
    published: bool,
}

impl Job {
    fn new(id: u64, r: &Request) -> Job {
        Job {
            id,
            prompt: r.prompt,
            generate: r.generate,
            arrival_us: r.arrival_us,
            prefix: r.prefix,
            prefix_hit: 0,
            produced: 0,
            own_ready: 0,
            host_tokens: 0,
            first_token_us: None,
            published: r.prefix.is_none(),
        }
    }

    /// Device tokens this job must own before its next decode step.
    fn own_needed(&self) -> usize {
        self.prompt + self.produced - self.prefix_hit
    }

    /// Tokens that still need prefill compute before decoding.
    fn pending_prefill(&self) -> usize {
        self.own_needed().saturating_sub(self.own_ready)
    }

    /// Worst-case device tokens at completion — the reservation size.
    fn worst_case(&self) -> usize {
        self.prompt + self.generate - self.prefix_hit
    }
}

fn shed_index(r: ShedReason) -> usize {
    match r {
        ShedReason::QueueFull => 0,
        ShedReason::NoKvHeadroom => 1,
        ShedReason::PressureBand => 2,
        ShedReason::DeadlineHopeless => 3,
    }
}

const SHED_REASONS: [ShedReason; 4] = [
    ShedReason::QueueFull,
    ShedReason::NoKvHeadroom,
    ShedReason::PressureBand,
    ShedReason::DeadlineHopeless,
];

/// Gauge schema of the serving telemetry sampler, in sample order.
/// These are instantaneous serving-loop values the metrics registry does
/// not hold live (the `serve.*` counters are only published at run end).
const SERVE_GAUGES: [&str; 7] = [
    "serve.queue_depth",
    "serve.running",
    "serve.kv_used_blocks",
    "serve.completed",
    "serve.slo_met",
    "serve.turned_away",
    "serve.generated_tokens",
];

/// Engine counters the sampler tracks as deltas: collective traffic and
/// fault-path activity, the signals that move during steps.
const TRACKED_COUNTERS: [&str; 4] = [
    "ops.puts",
    "sync.waits",
    "sync.signals",
    "fault.degraded_transfers",
];

/// Worst-offender exemplars kept in [`ServeReport::worst_misses`].
const TOP_K_MISSES: usize = 8;

/// Inserts an exemplar into the top-k ring, worst (largest e2e) first.
fn push_miss(misses: &mut Vec<SloMiss>, m: SloMiss) {
    let at = misses
        .iter()
        .position(|x| x.e2e_us < m.e2e_us)
        .unwrap_or(misses.len());
    misses.insert(at, m);
    misses.truncate(TOP_K_MISSES);
}

/// Outcome of trying to move one queued job into the running batch.
enum Join {
    Joined(Job),
    /// Not enough headroom right now — put it back and stop joining.
    Blocked(Job),
    /// Can never fit at current capacity: typed eviction.
    Never,
}

fn try_join(kv: &mut PagedKvManager, mut job: Job, kv_bpt: f64, clock_us: &mut f64) -> Join {
    if job.prefix_hit == 0 && !job.published {
        if let Some((pid, plen)) = job.prefix {
            if let Some(cached) = kv.prefix_lookup(pid) {
                job.prefix_hit = cached.min(plen).min(job.prompt);
                job.published = true;
            }
        }
    }
    let worst = job.worst_case();
    if job.host_tokens > 0 {
        let tokens = job.host_tokens.min(job.own_needed());
        match kv.restore(job.id, tokens, worst) {
            Ok(_) => {
                job.own_ready = tokens;
                job.host_tokens = 0;
                *clock_us += tokens as f64 * kv_bpt / HOST_LINK_BYTES_PER_US;
                Join::Joined(job)
            }
            Err(KvError::NeverFits { .. }) => Join::Never,
            Err(_) => Join::Blocked(job),
        }
    } else {
        match kv.reserve(job.id, worst) {
            Ok(_) => Join::Joined(job),
            Err(KvError::NeverFits { .. }) => Join::Never,
            Err(_) => Join::Blocked(job),
        }
    }
}

/// Spills the running job with id `vid` to host and moves it to the
/// recovery queue. The victim's transfer time is charged to its
/// [`Phase::KvSpill`] bucket.
fn spill_by_id(
    kv: &mut PagedKvManager,
    running: &mut Vec<Job>,
    recovery: &mut VecDeque<Job>,
    vid: u64,
    kv_bpt: f64,
    clock_us: &mut f64,
    rt: &mut RequestTracer,
) {
    let pos = running
        .iter()
        .position(|j| j.id == vid)
        .expect("spill victim must be running");
    let mut job = running.remove(pos);
    let tokens = job.own_ready;
    kv.spill(job.id);
    job.host_tokens = tokens;
    job.own_ready = 0;
    let pre = ps(*clock_us);
    *clock_us += tokens as f64 * kv_bpt / HOST_LINK_BYTES_PER_US;
    rt.charge(job.id, Phase::Queue, pre, None);
    rt.charge(job.id, Phase::KvSpill, ps(*clock_us), None);
    recovery.push_back(job);
}

/// Outcome of [`grow_or_spill`].
#[derive(PartialEq, Eq)]
enum Grow {
    /// The allocation reached the target (victims may have been spilled).
    Grown,
    /// Even with every other holder spilled and the prefix cache
    /// dropped, the pool cannot hold this job's next step: the job was
    /// removed from the batch and its blocks released — a typed
    /// eviction, never an infinite spill/restore loop.
    Evicted,
}

/// Grows job `id`'s allocation to `target_own` tokens, spilling victims
/// under oversubscription pressure.
#[allow(clippy::too_many_arguments)]
fn grow_or_spill(
    kv: &mut PagedKvManager,
    running: &mut Vec<Job>,
    recovery: &mut VecDeque<Job>,
    id: u64,
    target_own: usize,
    kv_bpt: f64,
    clock_us: &mut f64,
    rt: &mut RequestTracer,
) -> Grow {
    loop {
        if kv.grow_to(id, target_own).is_ok() {
            return Grow::Grown;
        }
        // Victim: the other running job holding the most blocks (newest
        // id breaks ties).
        let victim = running
            .iter()
            .filter(|j| j.id != id && kv.held(j.id) > 0)
            .max_by_key(|j| (kv.held(j.id), j.id))
            .map(|j| j.id);
        if let Some(vid) = victim {
            spill_by_id(kv, running, recovery, vid, kv_bpt, clock_us, rt);
            continue;
        }
        // Nobody else holds blocks; the last possible donor is the
        // prefix cache.
        kv.drop_prefix_cache();
        if kv.grow_to(id, target_own).is_ok() {
            return Grow::Grown;
        }
        let pos = running
            .iter()
            .position(|j| j.id == id)
            .expect("grower is running");
        let job = running.remove(pos);
        kv.release(job.id);
        rt.finish(job.id, Terminal::Evicted, ps(*clock_us));
        return Grow::Evicted;
    }
}

/// Runs `trace` through the full SLO-aware serving loop.
///
/// # Errors
///
/// Returns [`Error::EpochChanged`] if the backend's communicator epoch
/// advanced without the loop observing the recovery, and propagates
/// kernel failures only when no recovery is possible. Overload alone
/// never produces an error — it produces typed shed/timeout/evicted
/// outcomes.
#[allow(clippy::too_many_lines)]
pub(crate) fn run(
    engine: &mut ServingEngine,
    backend: &dyn CommBackend,
    trace: &[Request],
    cfg: &ServeConfig,
) -> Result<(ServeReport, ServeObservation)> {
    assert!(cfg.max_batch > 0, "max_batch must be positive");
    let block_tokens = cfg.kv.block_tokens.max(1);
    let derive_blocks = cfg.kv.total_blocks == 0;
    let tp0 = engine.tp();
    let mut kv_cfg = cfg.kv;
    kv_cfg.block_tokens = block_tokens;
    if derive_blocks {
        kv_cfg.total_blocks = (engine.kv_capacity_tokens() / block_tokens).max(1);
    }
    let mut kv = PagedKvManager::new(kv_cfg);
    let mut adm = Admission::new(cfg.admission, cfg.seed);
    let kv_bpt = engine.model().kv_bytes_per_token() as f64;

    let mut clock_us = 0.0f64;
    let mut decode_us = 0.0f64;
    let mut next = 0usize;
    let mut waiting: VecDeque<Job> = VecDeque::new();
    let mut recovery: VecDeque<Job> = VecDeque::new();
    let mut running: Vec<Job> = Vec::new();
    let mut epoch = backend.epoch();

    // Observability (DESIGN.md §17): per-request timelines + blame, the
    // virtual-time sampler, and the worst-offender SLO-miss ring.
    let mut rt = RequestTracer::new(trace.len(), cfg.observe.rtrace);
    let mut steps = 0u64;
    let mut slo_missed = 0usize;
    let mut misses: Vec<SloMiss> = Vec::new();
    let mut sampler = cfg.observe.telemetry.map(|t| {
        let mut s = sim::Sampler::new(
            sim::SamplerConfig::new(t.period_us, t.capacity),
            &SERVE_GAUGES,
        );
        let m = engine.engine_mut().metrics_mut();
        for name in TRACKED_COUNTERS {
            s.track_counter(m, name);
        }
        s.track_resources(m);
        s
    });

    let mut admitted = 0u64;
    let mut completed = 0usize;
    let mut shed = 0usize;
    let mut shed_by = [0u64; 4];
    let mut rejected = 0usize;
    let mut timed_out = 0usize;
    let mut evicted = 0usize;
    let mut slo_met = 0usize;
    let mut generated_tokens = 0usize;
    let mut prefill_tokens_billed = 0u64;
    let mut latency_sum = 0.0f64;
    let mut req_hist = profile::Histogram::new();
    let mut step_hist = profile::Histogram::new();
    let mut ttft_hist = profile::Histogram::new();
    let mut tpot_hist = profile::Histogram::new();
    let mut recoveries = 0usize;
    let mut recovery_latency_us = 0.0f64;
    let mut recoveries_by_class = [0usize; 4];
    let mut recovery_latency_us_by_class = [0.0f64; 4];

    while next < trace.len() || !waiting.is_empty() || !recovery.is_empty() || !running.is_empty() {
        // 1. Admit arrivals whose time has come. The door wait
        //    [arrival, decision] is the admission-shed-pressure bucket:
        //    it grows exactly when the loop is too busy to turn around.
        let door_ps = ps(clock_us);
        while next < trace.len() && trace[next].arrival_us <= clock_us {
            let r = &trace[next];
            let id = next as u64;
            next += 1;
            match adm.decide(waiting.len() + recovery.len(), kv.reserve_headroom()) {
                Decision::Admit => {
                    admitted += 1;
                    rt.admit(id, ps(r.arrival_us), door_ps);
                    waiting.push_back(Job::new(id, r));
                }
                Decision::Shed(reason) => {
                    shed += 1;
                    shed_by[shed_index(reason)] += 1;
                    rt.turn_away(id, ps(r.arrival_us), door_ps, Terminal::Shed);
                }
                Decision::Reject => {
                    rejected += 1;
                    rt.turn_away(id, ps(r.arrival_us), door_ps, Terminal::Rejected);
                }
            }
        }

        // 2. Shed waiters that can no longer meet their TTFT deadline —
        //    serving them would burn capacity for zero goodput. Recovery
        //    jobs are exempt: they are already admitted work the
        //    graceful-degradation contract promises to finish.
        if cfg.admission.enabled && cfg.slo.ttft_us.is_finite() {
            let now_ps = ps(clock_us);
            let before = waiting.len();
            waiting.retain(|j| {
                if clock_us - j.arrival_us <= cfg.slo.ttft_us {
                    true
                } else {
                    rt.finish(j.id, Terminal::Shed, now_ps);
                    false
                }
            });
            let dropped = before - waiting.len();
            shed += dropped;
            shed_by[shed_index(ShedReason::DeadlineHopeless)] += dropped as u64;
        }

        // 3. Hard per-request timeout: a typed terminal state, never an
        //    error. Applies to every admitted request, wherever it sits.
        if cfg.timeout_us.is_finite() {
            let now_ps = ps(clock_us);
            let mut expired = 0usize;
            // A timeout is a deadline violation: close the timeline,
            // then file the exemplar with its completed blame tiling.
            let mut expire = |j: &Job, rt: &mut RequestTracer| {
                rt.finish(j.id, Terminal::TimedOut, now_ps);
                slo_missed += 1;
                if rt.enabled() {
                    let ttft_us = j.first_token_us.map(|f| f - j.arrival_us);
                    push_miss(
                        &mut misses,
                        SloMiss {
                            id: j.id,
                            arrival_us: j.arrival_us,
                            e2e_us: clock_us - j.arrival_us,
                            ttft_us,
                            tpot_us: None,
                            missed_ttft: ttft_us.is_none_or(|t| t > cfg.slo.ttft_us),
                            missed_tpot: false,
                            terminal: Terminal::TimedOut,
                            blame: rt.blame(j.id),
                        },
                    );
                }
            };
            running.retain(|j| {
                if clock_us - j.arrival_us > cfg.timeout_us {
                    kv.release(j.id);
                    expire(j, &mut rt);
                    expired += 1;
                    false
                } else {
                    true
                }
            });
            waiting.retain(|j| {
                if clock_us - j.arrival_us > cfg.timeout_us {
                    expire(j, &mut rt);
                    expired += 1;
                    false
                } else {
                    true
                }
            });
            recovery.retain(|j| {
                if clock_us - j.arrival_us > cfg.timeout_us {
                    expire(j, &mut rt);
                    expired += 1;
                    false
                } else {
                    true
                }
            });
            timed_out += expired;
        }

        // 4. Join: recovery jobs first (priority drain of displaced
        //    work), then fresh waiters, while reservations fit.
        let mut blocked = false;
        while running.len() < cfg.max_batch {
            let from_recovery = !recovery.is_empty();
            let Some(job) = recovery.pop_front().or_else(|| waiting.pop_front()) else {
                break;
            };
            let jid = job.id;
            let pre = ps(clock_us);
            match try_join(&mut kv, job, kv_bpt, &mut clock_us) {
                Join::Joined(j) => {
                    // A restore moved KV back over the host link: the
                    // transfer window is this request's kv-spill time.
                    let post = ps(clock_us);
                    if post > pre {
                        rt.charge(jid, Phase::Queue, pre, None);
                        rt.charge(jid, Phase::KvSpill, post, None);
                    }
                    running.push(j);
                }
                Join::Blocked(j) => {
                    if from_recovery {
                        recovery.push_front(j);
                    } else {
                        waiting.push_front(j);
                    }
                    blocked = true;
                    break;
                }
                Join::Never => {
                    rt.finish(jid, Terminal::Evicted, ps(clock_us));
                    evicted += 1;
                }
            }
        }
        // Forced progress: nothing is running yet the head of the queue
        // cannot reserve — the only holders are the prefix cache (drop
        // it) or nothing (the job can never fit: typed eviction).
        if running.is_empty() && blocked {
            kv.drop_prefix_cache();
            if let Some(job) = recovery.pop_front().or_else(|| waiting.pop_front()) {
                let jid = job.id;
                let pre = ps(clock_us);
                match try_join(&mut kv, job, kv_bpt, &mut clock_us) {
                    Join::Joined(j) => {
                        let post = ps(clock_us);
                        if post > pre {
                            rt.charge(jid, Phase::Queue, pre, None);
                            rt.charge(jid, Phase::KvSpill, post, None);
                        }
                        running.push(j);
                    }
                    Join::Blocked(_) | Join::Never => {
                        rt.finish(jid, Terminal::Evicted, ps(clock_us));
                        evicted += 1;
                    }
                }
            }
        }

        if running.is_empty() {
            if waiting.is_empty() && recovery.is_empty() {
                if next < trace.len() {
                    // Idle: jump to the next arrival.
                    clock_us = clock_us.max(trace[next].arrival_us);
                    continue;
                }
                break;
            }
            continue;
        }

        // 5. Watermark pressure: proactively spill the biggest holder
        //    before stepping (only reachable under oversubscription or a
        //    shrunken pool).
        while kv.above_watermark() && running.len() > 1 {
            let Some(vid) = kv.spill_victim(running.iter().map(|j| j.id)) else {
                break;
            };
            spill_by_id(
                &mut kv,
                &mut running,
                &mut recovery,
                vid,
                kv_bpt,
                &mut clock_us,
                &mut rt,
            );
        }
        if running.is_empty() {
            continue;
        }

        // 6. One engine step: a prefill chunk if any running job still
        //    needs prompt compute, otherwise a decode step for the batch.
        let pending_total: usize = running.iter().map(Job::pending_prefill).sum();
        let step_result = if pending_total > 0 {
            // Plan this iteration's chunk at true per-request token
            // counts.
            let mut budget = PREFILL_CHUNK_TOKENS;
            let mut parts: Vec<(u64, usize)> = Vec::new();
            for j in &running {
                if budget == 0 {
                    break;
                }
                let p = j.pending_prefill();
                if p == 0 {
                    continue;
                }
                let take = p.min(budget);
                parts.push((j.id, take));
                budget -= take;
            }
            // Grow KV for the chunk (spilling under pressure may drop
            // participants).
            let mut grown: Vec<(u64, usize)> = Vec::new();
            for &(id, take) in &parts {
                let Some(pos) = running.iter().position(|j| j.id == id) else {
                    continue; // displaced by an earlier victim spill
                };
                let target = running[pos].own_ready + take;
                match grow_or_spill(
                    &mut kv,
                    &mut running,
                    &mut recovery,
                    id,
                    target,
                    kv_bpt,
                    &mut clock_us,
                    &mut rt,
                ) {
                    Grow::Grown => grown.push((id, take)),
                    Grow::Evicted => evicted += 1,
                }
            }
            if grown.is_empty() {
                continue;
            }
            let tokens: usize = grown.iter().map(|&(_, t)| t).sum();
            let pre_ps = ps(clock_us);
            let engine_from_ps = engine.engine_mut().now().as_ps();
            match engine.prefill_tokens(backend, tokens, grown.len()) {
                Ok(rep) => {
                    prefill_tokens_billed += tokens as u64;
                    clock_us += rep.total_us();
                    step_hist.record((rep.total_us() * 1e3).round() as u64);
                    let post_ps = ps(clock_us);
                    let link = Some(StepLink {
                        step: steps,
                        engine_from_ps,
                        engine_to_ps: engine.engine_mut().now().as_ps(),
                    });
                    steps += 1;
                    // Tile the step window exactly: compute first, the
                    // remainder is the collective.
                    let compute_ps = ((rep.compute_us * 1e6).round() as u64).min(post_ps - pre_ps);
                    for (id, take) in grown {
                        if let Some(j) = running.iter_mut().find(|j| j.id == id) {
                            j.own_ready += take;
                            if !j.published && j.pending_prefill() == 0 {
                                if let Some((pid, plen)) = j.prefix {
                                    kv.prefix_insert(pid, plen.min(j.prompt));
                                }
                                j.published = true;
                            }
                            rt.charge(id, Phase::Queue, pre_ps, None);
                            rt.charge(id, Phase::PrefillCompute, pre_ps + compute_ps, link);
                            rt.charge(id, Phase::CollectiveComm, post_ps, link);
                        }
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else {
            // Grow one slot per job for the token this step produces.
            let ids: Vec<u64> = running.iter().map(|j| j.id).collect();
            for id in ids {
                let Some(pos) = running.iter().position(|j| j.id == id) else {
                    continue;
                };
                let target = running[pos].own_ready + 1;
                if grow_or_spill(
                    &mut kv,
                    &mut running,
                    &mut recovery,
                    id,
                    target,
                    kv_bpt,
                    &mut clock_us,
                    &mut rt,
                ) == Grow::Evicted
                {
                    evicted += 1;
                }
            }
            if running.is_empty() {
                continue;
            }
            let mean_context =
                running.iter().map(|j| j.prompt + j.produced).sum::<usize>() / running.len();
            let batch = BatchConfig {
                bsz: running.len(),
                seqlen: mean_context.max(1),
            };
            let pre_ps = ps(clock_us);
            let engine_from_ps = engine.engine_mut().now().as_ps();
            match engine.decode_step(backend, batch) {
                Ok(rep) => {
                    clock_us += rep.total_us();
                    decode_us += rep.total_us();
                    step_hist.record((rep.total_us() * 1e3).round() as u64);
                    generated_tokens += running.len();
                    let post_ps = ps(clock_us);
                    let link = Some(StepLink {
                        step: steps,
                        engine_from_ps,
                        engine_to_ps: engine.engine_mut().now().as_ps(),
                    });
                    steps += 1;
                    let compute_ps = ((rep.compute_us * 1e6).round() as u64).min(post_ps - pre_ps);
                    let mut finished: Vec<Job> = Vec::new();
                    for j in &mut running {
                        j.produced += 1;
                        j.own_ready += 1;
                        if j.first_token_us.is_none() {
                            j.first_token_us = Some(clock_us);
                            rt.first_token(j.id, post_ps);
                        }
                        rt.charge(j.id, Phase::Queue, pre_ps, None);
                        rt.charge(j.id, Phase::DecodeCompute, pre_ps + compute_ps, link);
                        rt.charge(j.id, Phase::CollectiveComm, post_ps, link);
                    }
                    running.retain_mut(|j| {
                        if j.produced >= j.generate {
                            finished.push(j.clone());
                            false
                        } else {
                            true
                        }
                    });
                    for j in finished {
                        let latency = clock_us - j.arrival_us;
                        latency_sum += latency;
                        req_hist.record((latency * 1e3).round() as u64);
                        let first = j.first_token_us.unwrap_or(clock_us);
                        let ttft = first - j.arrival_us;
                        ttft_hist.record((ttft * 1e3).round() as u64);
                        let tpot = if j.generate > 1 {
                            (clock_us - first) / (j.generate - 1) as f64
                        } else {
                            0.0
                        };
                        tpot_hist.record((tpot * 1e3).round() as u64);
                        rt.finish(j.id, Terminal::Completed, post_ps);
                        let missed_ttft = ttft > cfg.slo.ttft_us;
                        let missed_tpot = tpot > cfg.slo.tpot_us;
                        if !missed_ttft && !missed_tpot {
                            slo_met += 1;
                        } else {
                            slo_missed += 1;
                            if rt.enabled() {
                                push_miss(
                                    &mut misses,
                                    SloMiss {
                                        id: j.id,
                                        arrival_us: j.arrival_us,
                                        e2e_us: latency,
                                        ttft_us: Some(ttft),
                                        tpot_us: (j.generate > 1).then_some(tpot),
                                        missed_ttft,
                                        missed_tpot,
                                        terminal: Terminal::Completed,
                                        blame: rt.blame(j.id),
                                    },
                                );
                            }
                        }
                        kv.release(j.id);
                        completed += 1;
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            }
        };

        // 7. Step failures: recover (shrink) if a rank died, losing all
        //    device KV; displaced jobs re-enter via the recovery queue.
        if let Err(err) = step_result {
            let Some((class, lat)) = engine.recover(backend)? else {
                return Err(err);
            };
            recoveries += 1;
            recovery_latency_us += lat;
            recoveries_by_class[class.index()] += 1;
            recovery_latency_us_by_class[class.index()] += lat;
            let pre_ps = ps(clock_us);
            clock_us += lat;
            let post_ps = ps(clock_us);
            // The stall delays every live admitted request, wherever it
            // sits — blame the whole window on recovery for all of them.
            for j in running.iter().chain(waiting.iter()).chain(recovery.iter()) {
                rt.charge(j.id, Phase::Queue, pre_ps, None);
                rt.charge(j.id, Phase::Recovery, post_ps, None);
            }
            epoch = backend.epoch();
            let new_blocks = if derive_blocks {
                (engine.kv_capacity_tokens() / block_tokens).max(1)
            } else {
                (cfg.kv.total_blocks * engine.tp() / tp0).max(1)
            };
            kv.lose_to_dead_rank(new_blocks);
            for mut job in running.drain(..) {
                // The prefix cache died with the pool; host spill copies
                // (made before the death) survive in host memory.
                job.prefix_hit = 0;
                job.own_ready = 0;
                recovery.push_back(job);
            }
        }

        // Telemetry tick: one sample per period boundary of the serving
        // clock — counter deltas, resource busy deltas, and the serving
        // gauges the registry does not hold live. When engine tracing is
        // on, the same gauges land in the engine trace as `serve.*`
        // counter tracks.
        if let Some(s) = sampler.as_mut() {
            let now = sim::Time::from_ps(ps(clock_us));
            if s.due(now) {
                let gauges = [
                    (waiting.len() + recovery.len()) as u64,
                    running.len() as u64,
                    kv.used() as u64,
                    completed as u64,
                    slo_met as u64,
                    (shed + rejected) as u64,
                    generated_tokens as u64,
                ];
                s.sample(now, engine.engine_mut().metrics(), &gauges);
                if engine.engine_mut().tracing() {
                    for (name, v) in SERVE_GAUGES.iter().zip(gauges) {
                        engine.engine_mut().trace_counter_at(name, v, now);
                    }
                }
            }
        }
    }

    // Teardown: return the prefix cache's pinned blocks and check the
    // conservation invariant — every allocated block was freed, spilled,
    // or lost to a dead rank.
    kv.drop_prefix_cache();
    debug_assert!(
        kv.stats().balances(),
        "KV accounting out of balance: {:?}",
        kv.stats()
    );
    debug_assert_eq!(
        completed + shed + rejected + timed_out + evicted,
        trace.len(),
        "request conservation violated"
    );

    let current = backend.epoch();
    if epoch != current {
        return Err(Error::EpochChanged {
            observed: epoch,
            current,
        });
    }

    let m = engine.engine_mut().metrics_mut();
    m.inc("serve.admitted", admitted);
    m.inc("serve.completed", completed as u64);
    m.inc("serve.slo_met", slo_met as u64);
    m.inc("serve.shed", shed as u64);
    for (i, r) in SHED_REASONS.iter().enumerate() {
        m.inc(&format!("serve.shed.{}", r.name()), shed_by[i]);
    }
    m.inc("serve.rejected", rejected as u64);
    m.inc("serve.timed_out", timed_out as u64);
    m.inc("serve.evicted", evicted as u64);
    m.inc("serve.prefill_tokens", prefill_tokens_billed);
    m.inc("serve.decode_tokens", generated_tokens as u64);
    let ks = kv.stats();
    m.inc("serve.kv_evictions", ks.evictions);
    m.inc("serve.kv_spilled_blocks", ks.spilled);
    m.inc("serve.kv_restored_blocks", ks.restored);
    m.inc("serve.kv_lost_blocks", ks.lost_to_dead_rank);
    m.inc("serve.prefix_hits", ks.prefix_hits);
    m.inc("serve.recoveries", recoveries as u64);
    m.inc("serve.slo_missed", slo_missed as u64);
    m.inc("serve.steps", steps);

    let secs = (clock_us / 1e6).max(1e-12);
    let observation = ServeObservation {
        timelines: rt.into_timelines(),
        telemetry: sampler,
    };
    let report = ServeReport {
        completed,
        makespan_us: clock_us,
        decode_throughput: generated_tokens as f64 / secs,
        mean_latency_us: latency_sum / completed.max(1) as f64,
        p95_latency_us: req_hist.p95() as f64 / 1e3,
        request_latency: LatencyStats::from_hist(&req_hist),
        step_latency: LatencyStats::from_hist(&step_hist),
        decode_time_fraction: if clock_us > 0.0 {
            decode_us / clock_us
        } else {
            0.0
        },
        recoveries,
        recovery_latency_us,
        recoveries_by_class,
        recovery_latency_us_by_class,
        final_tp: engine.tp(),
        goodput: slo_met as f64 / secs,
        slo_met,
        shed,
        rejected,
        timed_out,
        evicted,
        ttft: LatencyStats::from_hist(&ttft_hist),
        tpot: LatencyStats::from_hist(&tpot_hist),
        kv: ks,
        slo_missed,
        worst_misses: misses,
    };
    Ok((report, observation))
}
