//! SLO-aware admission control for the serving loop.
//!
//! Under overload an open-loop arrival process will grow the queue
//! without bound; every queued request then blows its TTFT deadline and
//! goodput collapses to zero even though the engine is saturated. The
//! admission policy keeps the engine at its knee instead: it looks at
//! two signals — queue depth and KV reservation headroom — and decides
//! per arrival whether to admit, queue, shed, or reject.
//!
//! Decisions are deterministic: the only probabilistic element (shedding
//! inside the pressure band) draws from a seeded LCG, so identical
//! traces produce identical decisions.

/// Why a request was shed or rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue was at `max_queue_depth` when the request arrived.
    QueueFull,
    /// KV reservation headroom was below the floor — admitting would
    /// guarantee a later eviction.
    NoKvHeadroom,
    /// Occupancy was inside the pressure band and the probabilistic
    /// shedder selected this request.
    PressureBand,
    /// The request waited in the queue past its TTFT deadline — it can
    /// no longer meet its SLO, so serving it would burn capacity for
    /// zero goodput.
    DeadlineHopeless,
}

impl ShedReason {
    /// Stable metric-name suffix (`serve.shed.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::NoKvHeadroom => "no_kv_headroom",
            ShedReason::PressureBand => "pressure_band",
            ShedReason::DeadlineHopeless => "deadline_hopeless",
        }
    }
}

/// The admission decision for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Take the request into the waiting queue (it will join a batch as
    /// soon as KV reservation succeeds).
    Admit,
    /// Drop the request with a typed reason; it counts against shed, not
    /// errors.
    Shed(ShedReason),
    /// Hard-reject at the door: the queue itself is full. Distinct from
    /// shed so operators can tell back-pressure (reject early, clients
    /// retry elsewhere) from load shedding (accepted then dropped).
    Reject,
}

/// Admission policy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Arrivals beyond this many waiting requests are rejected outright.
    /// `usize::MAX` disables rejection.
    pub max_queue_depth: usize,
    /// Minimum KV reservation headroom (fraction of the reservation
    /// budget) required to admit. Below it, arrivals are shed with
    /// [`ShedReason::NoKvHeadroom`].
    pub min_kv_headroom: f64,
    /// Width of the probabilistic pressure band above `min_kv_headroom`:
    /// inside `[min, min + band)` an arrival is shed with probability
    /// proportional to its depth into the band. `0.0` disables the band.
    pub shed_band: f64,
    /// Master switch — `false` admits everything (the open-loop control
    /// used to demonstrate overload collapse).
    pub enabled: bool,
}

impl AdmissionConfig {
    /// The default SLO-aware policy.
    pub fn slo_aware() -> AdmissionConfig {
        AdmissionConfig {
            max_queue_depth: 64,
            min_kv_headroom: 0.05,
            shed_band: 0.15,
            enabled: true,
        }
    }

    /// Admission disabled: every arrival is admitted (overload control).
    pub fn disabled() -> AdmissionConfig {
        AdmissionConfig {
            max_queue_depth: usize::MAX,
            min_kv_headroom: 0.0,
            shed_band: 0.0,
            enabled: false,
        }
    }
}

/// The admission controller: holds the policy and the seeded shed RNG.
#[derive(Debug, Clone)]
pub struct Admission {
    cfg: AdmissionConfig,
    rng: u64,
}

impl Admission {
    /// Builds a controller with a deterministic shed-RNG seed.
    pub fn new(cfg: AdmissionConfig, seed: u64) -> Admission {
        Admission {
            cfg,
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// The active policy.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    fn next_unit(&mut self) -> f64 {
        // Same LCG family as the trace generator: deterministic and
        // cheap; quality is irrelevant for a shed coin-flip.
        self.rng = self
            .rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (self.rng >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides one arrival given the current queue depth and the KV
    /// manager's reservation headroom (`PagedKvManager::reserve_headroom`).
    pub fn decide(&mut self, queue_depth: usize, kv_headroom: f64) -> Decision {
        if !self.cfg.enabled {
            return Decision::Admit;
        }
        if queue_depth >= self.cfg.max_queue_depth {
            return Decision::Reject;
        }
        if kv_headroom < self.cfg.min_kv_headroom {
            return Decision::Shed(ShedReason::NoKvHeadroom);
        }
        if self.cfg.shed_band > 0.0 {
            let into_band = self.cfg.min_kv_headroom + self.cfg.shed_band - kv_headroom;
            if into_band > 0.0 {
                let p = into_band / self.cfg.shed_band;
                if self.next_unit() < p {
                    return Decision::Shed(ShedReason::PressureBand);
                }
            }
        }
        Decision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_admits_everything() {
        let mut a = Admission::new(AdmissionConfig::disabled(), 1);
        for depth in [0usize, 10, 10_000] {
            assert_eq!(a.decide(depth, 0.0), Decision::Admit);
        }
    }

    #[test]
    fn full_queue_rejects_before_anything_else() {
        let mut a = Admission::new(
            AdmissionConfig {
                max_queue_depth: 4,
                ..AdmissionConfig::slo_aware()
            },
            1,
        );
        assert_eq!(a.decide(4, 1.0), Decision::Reject);
        assert_eq!(a.decide(5, 0.0), Decision::Reject);
    }

    #[test]
    fn no_headroom_sheds_with_typed_reason() {
        let mut a = Admission::new(AdmissionConfig::slo_aware(), 1);
        assert_eq!(a.decide(0, 0.01), Decision::Shed(ShedReason::NoKvHeadroom));
        assert_eq!(a.decide(0, 0.9), Decision::Admit);
    }

    #[test]
    fn pressure_band_sheds_proportionally_and_deterministically() {
        let run = || {
            let mut a = Admission::new(AdmissionConfig::slo_aware(), 42);
            (0..200).map(|_| a.decide(0, 0.10)).collect::<Vec<_>>()
        };
        let d1 = run();
        assert_eq!(d1, run(), "identical seeds give identical decisions");
        let shed = d1
            .iter()
            .filter(|d| matches!(d, Decision::Shed(ShedReason::PressureBand)))
            .count();
        // Headroom 0.10 sits 2/3 into the [0.05, 0.20) band: expect
        // roughly 2/3 shed, loosely bounded.
        assert!((90..180).contains(&shed), "shed {shed}/200");
        // Deep headroom never sheds.
        let mut a = Admission::new(AdmissionConfig::slo_aware(), 42);
        assert!((0..200).all(|_| a.decide(0, 0.5) == Decision::Admit));
    }
}
