//! Continuous-batching request serving — the production scenario behind
//! §5.2's closing argument: "for production traces, very few active
//! tokens reside in a batch, and for most requests, the majority of
//! end-to-end time is spent in the decode phase", which is exactly where
//! MSCCL++'s AllReduce gains land.
//!
//! The serving loop itself lives in [`crate::scheduler`]: a vLLM-style
//! continuous-batching scheduler with SLO-aware admission
//! ([`crate::admission`]) and a block-granular paged KV cache
//! ([`crate::kv`]). This module holds the trace/report types and two
//! entry points: [`serve_trace`] (the legacy permissive configuration —
//! admit everything, no deadlines) and [`serve_trace_with`] (full
//! [`ServeConfig`] control: SLOs, admission policy, KV pool shape,
//! timeouts).

use crate::backend::CommBackend;
use crate::engine::ServingEngine;
use crate::kv::KvStats;
use crate::rtrace::{timelines_to_chrome_json, timelines_to_json, RequestTimeline, SloMiss};
use crate::scheduler::{self, ServeConfig};
use mscclpp::Result;

/// One inference request of a serving trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Prompt length in tokens.
    pub prompt: usize,
    /// Tokens to generate.
    pub generate: usize,
    /// Arrival time in microseconds of serving-clock time.
    pub arrival_us: f64,
    /// Shared prompt prefix, as `(prefix_id, prefix_tokens)`: requests
    /// carrying the same id share their first `prefix_tokens` prompt
    /// tokens, so after one of them prefills, later arrivals hit the
    /// prefix cache and skip that prefill work. `None` for distinct
    /// prompts.
    pub prefix: Option<(u64, usize)>,
}

impl Request {
    /// Tags the request as sharing prompt prefix `id` over its first
    /// `tokens` tokens (clamped to the prompt length).
    pub fn with_prefix(mut self, id: u64, tokens: usize) -> Request {
        self.prefix = Some((id, tokens.min(self.prompt)));
        self
    }
}

/// Deterministic synthetic trace in the shape of production serving
/// loads: short-to-medium prompts, bursty Poisson-ish arrivals, modest
/// generation lengths.
pub fn synthetic_trace(
    requests: usize,
    mean_prompt: usize,
    mean_generate: usize,
    mean_interarrival_us: f64,
    seed: u64,
) -> Vec<Request> {
    // Small deterministic LCG so traces are reproducible without pulling
    // randomness into the simulation itself.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 // uniform [0, 1)
    };
    let mut t = 0.0;
    (0..requests)
        .map(|_| {
            t += -mean_interarrival_us * (1.0 - next()).ln();
            Request {
                prompt: ((mean_prompt as f64) * (0.5 + next())) as usize + 1,
                generate: ((mean_generate as f64) * (0.5 + next())) as usize + 1,
                arrival_us: t,
                prefix: None,
            }
        })
        .collect()
}

/// Percentile summary of a latency distribution, in microseconds.
///
/// Backed by an allocation-free log-linear histogram
/// ([`profile::Histogram`]): percentiles are bucket upper bounds (≤ ~6%
/// relative error, never understated); `max` is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Exact maximum.
    pub max_us: f64,
}

impl LatencyStats {
    pub(crate) fn from_hist(h: &profile::Histogram) -> Self {
        // The histogram records nanoseconds.
        LatencyStats {
            p50_us: h.p50() as f64 / 1e3,
            p95_us: h.p95() as f64 / 1e3,
            p99_us: h.p99() as f64 / 1e3,
            max_us: h.max() as f64 / 1e3,
        }
    }
}

/// Aggregate metrics of one serving run.
///
/// Request conservation holds for every run:
/// `completed + shed + rejected + timed_out + evicted == trace.len()` —
/// each request reaches exactly one typed terminal state.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests completed.
    pub completed: usize,
    /// Total serving-clock time in microseconds.
    pub makespan_us: f64,
    /// Generated tokens per second.
    pub decode_throughput: f64,
    /// Mean request latency (arrival → last token) in microseconds,
    /// from an exact running sum.
    pub mean_latency_us: f64,
    /// 95th-percentile request latency in microseconds (histogram
    /// upper bound, never understated).
    pub p95_latency_us: f64,
    /// Request latency distribution (arrival → last token).
    pub request_latency: LatencyStats,
    /// Per-iteration engine step latency distribution (prefill and
    /// decode steps).
    pub step_latency: LatencyStats,
    /// Fraction of serving time spent in decode iterations.
    pub decode_time_fraction: f64,
    /// Rank-death recoveries survived (epoch shrinks of the backend).
    pub recoveries: usize,
    /// Total recovery latency in microseconds: rank death through the
    /// shrunken communicator being ready, summed over recoveries.
    pub recovery_latency_us: f64,
    /// Recoveries per failure class, indexed by
    /// [`crate::FailureClass::index`] (member, leader, node, straggler).
    pub recoveries_by_class: [usize; 4],
    /// Summed recovery latency in microseconds per failure class,
    /// indexed like [`ServeReport::recoveries_by_class`].
    pub recovery_latency_us_by_class: [f64; 4],
    /// Tensor-parallel degree at the end of the run (smaller than the
    /// starting degree when ranks died).
    pub final_tp: usize,
    /// SLO-met completions per second of serving time — the metric the
    /// admission policy protects under overload.
    pub goodput: f64,
    /// Completions that met both the TTFT and TPOT budgets.
    pub slo_met: usize,
    /// Requests dropped by the admission policy or the hopeless-deadline
    /// pass (typed reasons in the `serve.shed.*` counters).
    pub shed: usize,
    /// Requests hard-rejected at the door (queue full on arrival).
    pub rejected: usize,
    /// Admitted requests that hit the per-request timeout wall.
    pub timed_out: usize,
    /// Admitted requests evicted because the KV pool could not hold them
    /// (typically after a capacity-shrinking rank death).
    pub evicted: usize,
    /// Time-to-first-token distribution over completions.
    pub ttft: LatencyStats,
    /// Time-per-output-token distribution over completions.
    pub tpot: LatencyStats,
    /// Paged-KV accounting: `allocated == freed + spilled +
    /// lost_to_dead_rank` at exit.
    pub kv: KvStats,
    /// Requests that violated a latency deadline: completions that
    /// missed TTFT or TPOT, plus timed-out requests.
    pub slo_missed: usize,
    /// Worst-offender deadline violations (largest end-to-end latency
    /// first, at most 8) with exact blame tilings
    /// ([`crate::rtrace::Blame`]); empty when
    /// [`crate::ObserveConfig::rtrace`] is off.
    pub worst_misses: Vec<SloMiss>,
}

/// Serves `trace` with continuous batching on `engine` and returns the
/// aggregate metrics, using the permissive legacy configuration: every
/// request is admitted, no SLO deadlines, KV pool derived from the
/// engine's HBM capacity model.
///
/// The loop subscribes to the backend's communicator epoch: when a step
/// fails because a rank died, [`ServingEngine::recover`] shrinks the
/// backend to the surviving tensor-parallel degree, that rank's KV
/// shards are lost (in-flight requests re-prefill their context or
/// restore from a host spill copy), and decoding continues.
/// Detection-to-ready latency lands in
/// [`ServeReport::recovery_latency_us`].
///
/// # Errors
///
/// Propagates kernel deadlocks from the communication stack when no
/// recovery is possible (no rank died, or the backend cannot shrink),
/// and [`mscclpp::Error::EpochChanged`] if the communicator epoch
/// advanced without the loop observing it.
pub fn serve_trace(
    engine: &mut ServingEngine,
    backend: &dyn CommBackend,
    trace: &[Request],
    max_batch: usize,
) -> Result<ServeReport> {
    scheduler::run(engine, backend, trace, &ServeConfig::permissive(max_batch)).map(|(r, _)| r)
}

/// Serves `trace` under full [`ServeConfig`] control: latency SLOs,
/// admission policy, KV pool shape, and per-request timeouts.
///
/// # Errors
///
/// As [`serve_trace`]. Overload never errors — it produces typed
/// shed/reject/timeout/evicted outcomes in the report.
pub fn serve_trace_with(
    engine: &mut ServingEngine,
    backend: &dyn CommBackend,
    trace: &[Request],
    cfg: &ServeConfig,
) -> Result<ServeReport> {
    scheduler::run(engine, backend, trace, cfg).map(|(r, _)| r)
}

/// Everything a serving run observed beyond the aggregate report: the
/// per-request causal timelines and the telemetry time series
/// (DESIGN.md §17). Returned by [`serve_trace_observed`].
#[derive(Debug, Clone)]
pub struct ServeObservation {
    /// One causal timeline per request that reached the admission door,
    /// in id order; empty when [`crate::ObserveConfig::rtrace`] is off.
    pub timelines: Vec<RequestTimeline>,
    /// The telemetry sampler with its recorded ring, when
    /// [`crate::ObserveConfig::telemetry`] was set.
    pub telemetry: Option<sim::Sampler>,
}

impl ServeObservation {
    /// Per-request timelines as a JSON array (exact integer
    /// picoseconds; see `results/README.md`).
    pub fn timelines_json(&self) -> String {
        timelines_to_json(&self.timelines)
    }

    /// Per-request timelines as Chrome trace-event JSON — one named
    /// Perfetto track per request, loadable beside the engine trace.
    pub fn timelines_chrome_json(&self) -> String {
        timelines_to_chrome_json(&self.timelines)
    }

    /// The telemetry time series as JSON (`None` when no sampler ran).
    pub fn telemetry_json(&self) -> Option<String> {
        self.telemetry.as_ref().map(sim::Sampler::to_json)
    }
}

/// As [`serve_trace_with`], but also returns the request timelines and
/// telemetry series recorded per [`ServeConfig::observe`].
///
/// # Errors
///
/// As [`serve_trace`].
pub fn serve_trace_observed(
    engine: &mut ServingEngine,
    backend: &dyn CommBackend,
    trace: &[Request],
    cfg: &ServeConfig,
) -> Result<(ServeReport, ServeObservation)> {
    scheduler::run(engine, backend, trace, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MscclppBackend;
    use crate::model::ModelConfig;
    use hw::EnvKind;

    #[test]
    fn trace_is_deterministic_and_ordered() {
        let a = synthetic_trace(20, 256, 32, 10_000.0, 7);
        let b = synthetic_trace(20, 256, 32, 10_000.0, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert!(a.iter().all(|r| r.prompt >= 1 && r.generate >= 1));
    }

    #[test]
    fn serving_completes_every_request() {
        let mut engine =
            ServingEngine::new(EnvKind::A100_80G, ModelConfig::llama2_13b(), 16 * 1024);
        let backend = MscclppBackend::new();
        let trace = synthetic_trace(6, 128, 24, 5_000.0, 3);
        let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
        assert_eq!(report.completed, 6);
        assert!(report.makespan_us > 0.0);
        assert!(report.decode_throughput > 0.0);
        assert!(report.p95_latency_us >= report.mean_latency_us * 0.5);
        // Histogram-backed percentiles: ordered, bounded by the exact
        // max, and never understating.
        let rl = report.request_latency;
        assert!(rl.p50_us <= rl.p95_us && rl.p95_us <= rl.p99_us && rl.p99_us <= rl.max_us);
        assert!((rl.p95_us - report.p95_latency_us).abs() < 1e-9);
        assert!(rl.max_us > 0.0);
        let sl = report.step_latency;
        assert!(sl.p50_us > 0.0 && sl.p50_us <= sl.max_us);
        assert!(sl.max_us <= report.makespan_us);
        // §5.2's premise: the majority of serving time is decode.
        assert!(
            report.decode_time_fraction > 0.5,
            "decode fraction {}",
            report.decode_time_fraction
        );
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.final_tp, 8);
        // Permissive config: nothing shed, rejected, or evicted; request
        // conservation and KV balance hold.
        assert_eq!(
            report.shed + report.rejected + report.timed_out + report.evicted,
            0
        );
        assert_eq!(report.slo_met, 6, "unbounded SLOs count every completion");
        assert!(report.goodput > 0.0);
        assert!(report.kv.balances(), "{:?}", report.kv);
        assert!(report.kv.allocated > 0);
        assert!(report.ttft.max_us > 0.0);
        assert!(report.ttft.p50_us <= report.request_latency.max_us);
        assert!(report.tpot.max_us > 0.0);
    }

    /// The prefill mis-billing regression: a batch pairing a 1-token and
    /// a 4096-token prompt must be billed 4097 prefill tokens. The old
    /// loop billed `bsz * mean_prompt` with a floored integer mean —
    /// 4096 tokens for this pair, silently under-billing.
    #[test]
    fn prefill_is_billed_at_true_per_request_token_counts() {
        let run = |prompts: &[usize]| {
            let mut engine =
                ServingEngine::new(EnvKind::A100_80G, ModelConfig::llama2_13b(), 16 * 1024);
            let backend = MscclppBackend::new();
            let trace: Vec<Request> = prompts
                .iter()
                .map(|&p| Request {
                    prompt: p,
                    generate: 2,
                    arrival_us: 0.0,
                    prefix: None,
                })
                .collect();
            let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
            let billed = engine
                .engine_mut()
                .metrics()
                .counter("serve.prefill_tokens");
            (billed, report.makespan_us)
        };
        let (billed, t_4097) = run(&[1, 4096]);
        assert_eq!(billed, 4097, "true sum, not a floored mean");
        let (billed_even, t_4096) = run(&[2048, 2048]);
        assert_eq!(billed_even, 4096);
        // The extra billed token costs real serving time.
        assert!(t_4097 > t_4096 * 0.99);
    }

    #[test]
    fn serving_survives_rank_death_at_reduced_tp() {
        use sim::{Duration, FaultPlan, Time};
        // GPU 3 dies 100us of virtual time into the run — mid-step.
        let plan = FaultPlan::new(11)
            .rank_down(3, Time::from_ps(100_000_000))
            .with_wait_timeout(Duration::from_us(300.0));
        let mut engine = ServingEngine::with_fault_plan(
            EnvKind::A100_80G,
            ModelConfig::llama2_13b(),
            16 * 1024,
            Some(plan),
        );
        let backend = MscclppBackend::new();
        let trace = synthetic_trace(6, 128, 24, 5_000.0, 3);
        let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
        // Every request still completes, at the shrunken TP degree.
        assert_eq!(report.completed, 6);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.final_tp, 7);
        assert_eq!(backend.epoch(), 1);
        assert!(
            report.recovery_latency_us > 0.0,
            "recovery latency {} must cover death -> ready",
            report.recovery_latency_us
        );
        // Recovery latency is part of the serving makespan.
        assert!(report.makespan_us > report.recovery_latency_us);
        // Rank 3 is not node 0's leader (rank 0 is): a member failure.
        assert_eq!(report.recoveries_by_class, [1, 0, 0, 0]);
        assert!(report.recovery_latency_us_by_class[0] > 0.0);
        assert_eq!(
            report.recovery_latency_us_by_class[0],
            report.recovery_latency_us
        );
        // The dead rank's KV shards were lost and the displaced work
        // re-prefilled; accounting still balances.
        assert!(report.kv.balances(), "{:?}", report.kv);
        assert!(report.kv.lost_to_dead_rank > 0);
    }

    #[test]
    fn serving_survives_node_loss_at_multi_node_tp() {
        use crate::engine::FailureClass;
        use sim::{Duration, FaultPlan, Time};
        // The whole second node (ranks 8..16) dies 100us into the run.
        let node1: Vec<usize> = (8..16).collect();
        let plan = FaultPlan::new(17)
            .node_down(&node1, Time::from_ps(100_000_000))
            .with_wait_timeout(Duration::from_us(300.0));
        let mut engine = ServingEngine::with_cluster(
            EnvKind::A100_40G,
            2,
            ModelConfig::llama2_13b(),
            16 * 1024,
            Some(plan),
        );
        assert_eq!(engine.tp(), 16);
        let backend = MscclppBackend::new();
        let trace = synthetic_trace(4, 128, 12, 5_000.0, 3);
        let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
        // Every request completes on the surviving node at TP 8.
        assert_eq!(report.completed, 4);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.final_tp, 8);
        assert_eq!(backend.epoch(), 1);
        let node = FailureClass::Node.index();
        assert_eq!(report.recoveries_by_class[node], 1);
        assert!(report.recovery_latency_us_by_class[node] > 0.0);
        assert!(report.makespan_us > report.recovery_latency_us);
    }

    #[test]
    fn serving_classifies_leader_death_at_multi_node_tp() {
        use crate::engine::FailureClass;
        use sim::{Duration, FaultPlan, Time};
        // Rank 8 — node 1's lowest serving rank, its inter-node leader —
        // dies mid-run, forcing a leader re-election on that node. The
        // detection timeout must exceed the worst-case *legitimate* wait
        // of the shrunken leader-relay plan (members wait while the
        // whole prefill-sized message funnels through their leader), or
        // healthy post-recovery steps read as deaths.
        let plan = FaultPlan::new(19)
            .rank_down(8, Time::from_ps(100_000_000))
            .with_wait_timeout(Duration::from_us(2_000.0));
        let mut engine = ServingEngine::with_cluster(
            EnvKind::A100_40G,
            2,
            ModelConfig::llama2_13b(),
            16 * 1024,
            Some(plan),
        );
        let backend = MscclppBackend::new();
        let trace = synthetic_trace(4, 128, 12, 5_000.0, 3);
        let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
        assert_eq!(report.completed, 4);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.final_tp, 15);
        let leader = FailureClass::Leader.index();
        assert_eq!(report.recoveries_by_class[leader], 1);
        assert!(report.recovery_latency_us_by_class[leader] > 0.0);
    }

    #[test]
    fn prefix_cache_hits_skip_prefill_tokens() {
        let run = |share_prefix: bool| {
            let mut engine =
                ServingEngine::new(EnvKind::A100_80G, ModelConfig::llama2_13b(), 16 * 1024);
            let backend = MscclppBackend::new();
            // Two requests with the same 2000-token system prompt, far
            // enough apart that the second arrives after the first
            // published the prefix.
            let mk = |arrival: f64| Request {
                prompt: 2048,
                generate: 4,
                arrival_us: arrival,
                prefix: None,
            };
            let trace: Vec<Request> = if share_prefix {
                vec![
                    mk(0.0).with_prefix(42, 2000),
                    mk(400_000.0).with_prefix(42, 2000),
                ]
            } else {
                vec![mk(0.0), mk(400_000.0)]
            };
            let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
            let billed = engine
                .engine_mut()
                .metrics()
                .counter("serve.prefill_tokens");
            (report, billed)
        };
        let (miss_report, miss_billed) = run(false);
        let (hit_report, hit_billed) = run(true);
        assert_eq!(miss_report.completed, 2);
        assert_eq!(hit_report.completed, 2);
        assert_eq!(hit_report.kv.prefix_hits, 1);
        assert_eq!(miss_report.kv.prefix_hits, 0);
        // The hit skips the shared 2000 prefix tokens of request 2.
        assert_eq!(miss_billed - hit_billed, 2000);
        assert!(hit_report.kv.balances());
    }
}
