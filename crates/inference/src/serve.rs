//! Continuous-batching request serving — the production scenario behind
//! §5.2's closing argument: "for production traces, very few active
//! tokens reside in a batch, and for most requests, the majority of
//! end-to-end time is spent in the decode phase", which is exactly where
//! MSCCL++'s AllReduce gains land.
//!
//! The scheduler is a simplified vLLM loop: arriving requests are
//! prefilled (one batch per iteration) and then join the running decode
//! batch; each iteration decodes one token for every active request.

use crate::backend::CommBackend;
use crate::engine::{BatchConfig, ServingEngine};
use mscclpp::Result;

/// One inference request of a serving trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Prompt length in tokens.
    pub prompt: usize,
    /// Tokens to generate.
    pub generate: usize,
    /// Arrival time in microseconds of serving-clock time.
    pub arrival_us: f64,
}

/// Deterministic synthetic trace in the shape of production serving
/// loads: short-to-medium prompts, bursty Poisson-ish arrivals, modest
/// generation lengths.
pub fn synthetic_trace(
    requests: usize,
    mean_prompt: usize,
    mean_generate: usize,
    mean_interarrival_us: f64,
    seed: u64,
) -> Vec<Request> {
    // Small deterministic LCG so traces are reproducible without pulling
    // randomness into the simulation itself.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 // uniform [0, 1)
    };
    let mut t = 0.0;
    (0..requests)
        .map(|_| {
            t += -mean_interarrival_us * (1.0 - next()).ln();
            Request {
                prompt: ((mean_prompt as f64) * (0.5 + next())) as usize + 1,
                generate: ((mean_generate as f64) * (0.5 + next())) as usize + 1,
                arrival_us: t,
            }
        })
        .collect()
}

/// Percentile summary of a latency distribution, in microseconds.
///
/// Backed by an allocation-free log-linear histogram
/// ([`profile::Histogram`]): percentiles are bucket upper bounds (≤ ~6%
/// relative error, never understated); `max` is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Exact maximum.
    pub max_us: f64,
}

impl LatencyStats {
    fn from_hist(h: &profile::Histogram) -> Self {
        // The histogram records nanoseconds.
        LatencyStats {
            p50_us: h.p50() as f64 / 1e3,
            p95_us: h.p95() as f64 / 1e3,
            p99_us: h.p99() as f64 / 1e3,
            max_us: h.max() as f64 / 1e3,
        }
    }
}

/// Aggregate metrics of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeReport {
    /// Requests completed.
    pub completed: usize,
    /// Total serving-clock time in microseconds.
    pub makespan_us: f64,
    /// Generated tokens per second.
    pub decode_throughput: f64,
    /// Mean request latency (arrival → last token) in microseconds.
    pub mean_latency_us: f64,
    /// 95th-percentile request latency in microseconds.
    pub p95_latency_us: f64,
    /// Request latency distribution (arrival → last token).
    pub request_latency: LatencyStats,
    /// Per-iteration engine step latency distribution (prefill and
    /// decode steps).
    pub step_latency: LatencyStats,
    /// Fraction of serving time spent in decode iterations.
    pub decode_time_fraction: f64,
    /// Rank-death recoveries survived (epoch shrinks of the backend).
    pub recoveries: usize,
    /// Total recovery latency in microseconds: rank death through the
    /// shrunken communicator being ready, summed over recoveries.
    pub recovery_latency_us: f64,
    /// Recoveries per failure class, indexed by
    /// [`crate::FailureClass::index`] (member, leader, node, straggler).
    pub recoveries_by_class: [usize; 4],
    /// Summed recovery latency in microseconds per failure class,
    /// indexed like [`ServeReport::recoveries_by_class`].
    pub recovery_latency_us_by_class: [f64; 4],
    /// Tensor-parallel degree at the end of the run (smaller than the
    /// starting degree when ranks died).
    pub final_tp: usize,
}

#[derive(Debug, Clone, Copy)]
struct Active {
    context: usize,
    remaining: usize,
    arrival_us: f64,
}

/// Serves `trace` with continuous batching on `engine` and returns the
/// aggregate metrics.
///
/// The loop subscribes to the backend's communicator epoch: when a step
/// fails because a rank died, [`ServingEngine::recover`] shrinks the
/// backend to the surviving tensor-parallel degree, the in-flight batch
/// is re-queued (the failed step reruns from scratch — its in-place
/// partial AllReduce results were discarded by the shrink), and decoding
/// continues. Detection-to-ready latency lands in
/// [`ServeReport::recovery_latency_us`].
///
/// # Errors
///
/// Propagates kernel deadlocks from the communication stack when no
/// recovery is possible (no rank died, or the backend cannot shrink).
pub fn serve_trace(
    engine: &mut ServingEngine,
    backend: &dyn CommBackend,
    trace: &[Request],
    max_batch: usize,
) -> Result<ServeReport> {
    let mut clock_us = 0.0f64;
    let mut decode_us = 0.0f64;
    let mut queue: std::collections::VecDeque<Request> = trace.iter().copied().collect();
    let mut active: Vec<Active> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut req_hist = profile::Histogram::new();
    let mut step_hist = profile::Histogram::new();
    let mut generated_tokens = 0usize;
    let mut recoveries = 0usize;
    let mut recovery_latency_us = 0.0f64;
    let mut recoveries_by_class = [0usize; 4];
    let mut recovery_latency_us_by_class = [0.0f64; 4];
    let mut epoch = backend.epoch();

    while !queue.is_empty() || !active.is_empty() {
        // Admit arrived requests up to the batch limit, prefilling each
        // admission batch in one go.
        let mut admitted: Vec<Request> = Vec::new();
        while active.len() + admitted.len() < max_batch {
            match queue.front() {
                Some(r) if r.arrival_us <= clock_us => {
                    admitted.push(*r);
                    queue.pop_front();
                }
                _ => break,
            }
        }
        if !admitted.is_empty() {
            let tokens: usize = admitted.iter().map(|r| r.prompt).sum();
            let mean_prompt = tokens / admitted.len();
            let cfg = BatchConfig {
                bsz: admitted.len(),
                seqlen: mean_prompt,
            };
            let report = match engine.prefill(backend, cfg) {
                Ok(r) => r,
                Err(err) => match engine.recover(backend)? {
                    // Epoch changed: re-queue the batch by rerunning the
                    // prefill at the shrunken tensor-parallel degree.
                    Some((class, lat)) => {
                        recoveries += 1;
                        recovery_latency_us += lat;
                        recoveries_by_class[class.index()] += 1;
                        recovery_latency_us_by_class[class.index()] += lat;
                        clock_us += lat;
                        epoch = backend.epoch();
                        engine.prefill(backend, cfg)?
                    }
                    None => return Err(err),
                },
            };
            clock_us += report.total_us();
            step_hist.record((report.total_us() * 1e3).round() as u64);
            for r in admitted {
                active.push(Active {
                    context: r.prompt,
                    remaining: r.generate,
                    arrival_us: r.arrival_us,
                });
            }
        }

        if active.is_empty() {
            // Idle: jump to the next arrival.
            if let Some(r) = queue.front() {
                clock_us = clock_us.max(r.arrival_us);
            }
            continue;
        }

        // One decode iteration for the whole running batch.
        let mean_context = active.iter().map(|a| a.context).sum::<usize>() / active.len();
        let cfg = BatchConfig {
            bsz: active.len(),
            seqlen: mean_context.max(1),
        };
        let report = match engine.decode_step(backend, cfg) {
            Ok(r) => r,
            Err(err) => match engine.recover(backend)? {
                // Rank died mid-step: the batch stays active (re-queued)
                // and the step reruns on the survivor group.
                Some((class, lat)) => {
                    recoveries += 1;
                    recovery_latency_us += lat;
                    recoveries_by_class[class.index()] += 1;
                    recovery_latency_us_by_class[class.index()] += lat;
                    clock_us += lat;
                    epoch = backend.epoch();
                    engine.decode_step(backend, cfg)?
                }
                None => return Err(err),
            },
        };
        clock_us += report.total_us();
        decode_us += report.total_us();
        step_hist.record((report.total_us() * 1e3).round() as u64);
        generated_tokens += active.len();
        for a in &mut active {
            a.context += 1;
            a.remaining -= 1;
        }
        active.retain(|a| {
            if a.remaining == 0 {
                latencies.push(clock_us - a.arrival_us);
                req_hist.record(((clock_us - a.arrival_us) * 1e3).round() as u64);
                false
            } else {
                true
            }
        });
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let completed = latencies.len();
    let mean_latency_us = latencies.iter().sum::<f64>() / completed.max(1) as f64;
    let p95_latency_us = latencies
        .get((completed as f64 * 0.95) as usize)
        .or_else(|| latencies.last())
        .copied()
        .unwrap_or(0.0);
    debug_assert_eq!(epoch, backend.epoch(), "unobserved epoch change");
    Ok(ServeReport {
        completed,
        makespan_us: clock_us,
        decode_throughput: generated_tokens as f64 / (clock_us / 1e6),
        mean_latency_us,
        p95_latency_us,
        request_latency: LatencyStats::from_hist(&req_hist),
        step_latency: LatencyStats::from_hist(&step_hist),
        decode_time_fraction: decode_us / clock_us,
        recoveries,
        recovery_latency_us,
        recoveries_by_class,
        recovery_latency_us_by_class,
        final_tp: engine.tp(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MscclppBackend;
    use crate::model::ModelConfig;
    use hw::EnvKind;

    #[test]
    fn trace_is_deterministic_and_ordered() {
        let a = synthetic_trace(20, 256, 32, 10_000.0, 7);
        let b = synthetic_trace(20, 256, 32, 10_000.0, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert!(a.iter().all(|r| r.prompt >= 1 && r.generate >= 1));
    }

    #[test]
    fn serving_completes_every_request() {
        let mut engine =
            ServingEngine::new(EnvKind::A100_80G, ModelConfig::llama2_13b(), 16 * 1024);
        let backend = MscclppBackend::new();
        let trace = synthetic_trace(6, 128, 24, 5_000.0, 3);
        let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
        assert_eq!(report.completed, 6);
        assert!(report.makespan_us > 0.0);
        assert!(report.decode_throughput > 0.0);
        assert!(report.p95_latency_us >= report.mean_latency_us * 0.5);
        // Histogram-backed percentiles: ordered, bounded by the exact
        // max, and consistent with the sort-based p95 (upper-bound
        // buckets never understate).
        let rl = report.request_latency;
        assert!(rl.p50_us <= rl.p95_us && rl.p95_us <= rl.p99_us && rl.p99_us <= rl.max_us);
        assert!(rl.p95_us >= report.p95_latency_us * 0.99);
        assert!(rl.max_us > 0.0);
        let sl = report.step_latency;
        assert!(sl.p50_us > 0.0 && sl.p50_us <= sl.max_us);
        assert!(sl.max_us <= report.makespan_us);
        // §5.2's premise: the majority of serving time is decode.
        assert!(
            report.decode_time_fraction > 0.5,
            "decode fraction {}",
            report.decode_time_fraction
        );
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.final_tp, 8);
    }

    #[test]
    fn serving_survives_rank_death_at_reduced_tp() {
        use sim::{Duration, FaultPlan, Time};
        // GPU 3 dies 100us of virtual time into the run — mid-step.
        let plan = FaultPlan::new(11)
            .rank_down(3, Time::from_ps(100_000_000))
            .with_wait_timeout(Duration::from_us(300.0));
        let mut engine = ServingEngine::with_fault_plan(
            EnvKind::A100_80G,
            ModelConfig::llama2_13b(),
            16 * 1024,
            Some(plan),
        );
        let backend = MscclppBackend::new();
        let trace = synthetic_trace(6, 128, 24, 5_000.0, 3);
        let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
        // Every request still completes, at the shrunken TP degree.
        assert_eq!(report.completed, 6);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.final_tp, 7);
        assert_eq!(backend.epoch(), 1);
        assert!(
            report.recovery_latency_us > 0.0,
            "recovery latency {} must cover death -> ready",
            report.recovery_latency_us
        );
        // Recovery latency is part of the serving makespan.
        assert!(report.makespan_us > report.recovery_latency_us);
        // Rank 3 is not node 0's leader (rank 0 is): a member failure.
        assert_eq!(report.recoveries_by_class, [1, 0, 0, 0]);
        assert!(report.recovery_latency_us_by_class[0] > 0.0);
        assert_eq!(
            report.recovery_latency_us_by_class[0],
            report.recovery_latency_us
        );
    }

    #[test]
    fn serving_survives_node_loss_at_multi_node_tp() {
        use crate::engine::FailureClass;
        use sim::{Duration, FaultPlan, Time};
        // The whole second node (ranks 8..16) dies 100us into the run.
        let node1: Vec<usize> = (8..16).collect();
        let plan = FaultPlan::new(17)
            .node_down(&node1, Time::from_ps(100_000_000))
            .with_wait_timeout(Duration::from_us(300.0));
        let mut engine = ServingEngine::with_cluster(
            EnvKind::A100_40G,
            2,
            ModelConfig::llama2_13b(),
            16 * 1024,
            Some(plan),
        );
        assert_eq!(engine.tp(), 16);
        let backend = MscclppBackend::new();
        let trace = synthetic_trace(4, 128, 12, 5_000.0, 3);
        let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
        // Every request completes on the surviving node at TP 8.
        assert_eq!(report.completed, 4);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.final_tp, 8);
        assert_eq!(backend.epoch(), 1);
        let node = FailureClass::Node.index();
        assert_eq!(report.recoveries_by_class[node], 1);
        assert!(report.recovery_latency_us_by_class[node] > 0.0);
        assert!(report.makespan_us > report.recovery_latency_us);
    }

    #[test]
    fn serving_classifies_leader_death_at_multi_node_tp() {
        use crate::engine::FailureClass;
        use sim::{Duration, FaultPlan, Time};
        // Rank 8 — node 1's lowest serving rank, its inter-node leader —
        // dies mid-run, forcing a leader re-election on that node. The
        // detection timeout must exceed the worst-case *legitimate* wait
        // of the shrunken leader-relay plan (members wait while the
        // whole prefill-sized message funnels through their leader), or
        // healthy post-recovery steps read as deaths.
        let plan = FaultPlan::new(19)
            .rank_down(8, Time::from_ps(100_000_000))
            .with_wait_timeout(Duration::from_us(2_000.0));
        let mut engine = ServingEngine::with_cluster(
            EnvKind::A100_40G,
            2,
            ModelConfig::llama2_13b(),
            16 * 1024,
            Some(plan),
        );
        let backend = MscclppBackend::new();
        let trace = synthetic_trace(4, 128, 12, 5_000.0, 3);
        let report = serve_trace(&mut engine, &backend, &trace, 8).unwrap();
        assert_eq!(report.completed, 4);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.final_tp, 15);
        let leader = FailureClass::Leader.index();
        assert_eq!(report.recoveries_by_class[leader], 1);
        assert!(report.recovery_latency_us_by_class[leader] > 0.0);
    }
}
