//! Block-granular paged KV-cache management for the serving scheduler.
//!
//! The manager mirrors the vLLM design the paper's §5.2 setup runs on:
//! GPU KV memory is carved into fixed-size blocks of `block_tokens`
//! tokens each, requests hold [`Reservation`]s sized for their
//! *worst-case* decode length (so an admitted request can always grow to
//! completion without an out-of-memory surprise), and a [`PrefixCache`]
//! pins the blocks of shared prompt prefixes so repeat prefixes skip
//! prefill work.
//!
//! Robustness invariants (DESIGN.md §16):
//!
//! * **conservation** — every allocated block ends in exactly one of
//!   three states: freed (request finished / timed out / evicted),
//!   spilled to host, or lost to a dead rank. [`KvStats::balances`]
//!   checks `allocated == freed + spilled + lost` and the chaos suite
//!   asserts it at exit of every run, rank deaths included.
//! * **no oversubscription surprises** — in the default conservative
//!   mode, the sum of reservations never exceeds the block pool, so an
//!   admitted request can never fail a later allocation. An explicit
//!   oversubscription factor > 1.0 trades that guarantee for occupancy,
//!   backed by watermark-driven spill to host.
//! * **determinism** — the free list is LIFO and all victim selection is
//!   by (blocks, id) order, so identical runs allocate identical block
//!   ids in identical order.

use std::collections::HashMap;

/// Configuration of the paged KV block pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvConfig {
    /// Tokens per KV block (vLLM default is 16).
    pub block_tokens: usize,
    /// Device blocks in the pool. `0` means "derive from the engine's
    /// HBM capacity model" (see `ServingEngine::kv_capacity_tokens`).
    pub total_blocks: usize,
    /// Occupancy fraction above which the manager asks the scheduler to
    /// spill the coldest request to host memory. `1.0` disables
    /// watermark spilling (conservative reservations never need it).
    pub spill_watermark: f64,
    /// Reservation oversubscription factor: reservations may sum to
    /// `factor * total_blocks`. `1.0` (default) is conservative —
    /// admitted requests can never OOM; larger values admit more and
    /// rely on watermark spill / eviction under pressure.
    pub oversubscription: f64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            block_tokens: 16,
            total_blocks: 0,
            spill_watermark: 1.0,
            oversubscription: 1.0,
        }
    }
}

/// A worst-case block reservation held by one admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Blocks reserved (ceil of worst-case tokens / block size).
    pub blocks: usize,
}

/// Lifetime accounting of the block pool. Counters are monotonic over
/// the whole run; `allocated == freed + spilled + lost` must hold once
/// every request has reached a terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvStats {
    /// Blocks ever handed out (device allocations, restores included).
    pub allocated: u64,
    /// Blocks returned by finished / timed-out / evicted requests and
    /// by the prefix cache at teardown.
    pub freed: u64,
    /// Blocks moved to host memory by watermark spill (their requests
    /// keep a host copy and can restore without re-prefilling).
    pub spilled: u64,
    /// Blocks invalidated by a rank death (the dead rank held a shard
    /// of every block, so the device copy is unrecoverable).
    pub lost_to_dead_rank: u64,
    /// Spill events (requests preempted to host).
    pub evictions: u64,
    /// Blocks re-allocated from a host copy (restore after spill or
    /// after a rank death with a surviving host copy).
    pub restored: u64,
    /// Prefix-cache hits (admissions that skipped prefix prefill).
    pub prefix_hits: u64,
    /// Peak simultaneously-used blocks.
    pub peak_used: usize,
}

impl KvStats {
    /// The conservation invariant: every allocated block was freed,
    /// spilled to host, or lost to a dead rank.
    pub fn balances(&self) -> bool {
        self.allocated == self.freed + self.spilled + self.lost_to_dead_rank
    }
}

/// Why an allocation or reservation could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// The reservation would push the reserved total past the
    /// oversubscription budget — the request cannot be admitted yet.
    NoHeadroom {
        /// Blocks requested.
        want: usize,
        /// Blocks still reservable.
        available: usize,
    },
    /// The request's worst case exceeds the whole pool — it can never
    /// be admitted at this capacity (e.g. after a shrink).
    NeverFits {
        /// Blocks requested.
        want: usize,
        /// The pool size.
        total: usize,
    },
    /// The free list is empty and nothing can be spilled (allocation
    /// under oversubscription with every block pinned).
    OutOfBlocks,
}

#[derive(Debug, Clone)]
struct Owner {
    blocks: Vec<u32>,
    reserved: usize,
}

/// The block-granular paged KV manager.
#[derive(Debug, Clone)]
pub struct PagedKvManager {
    cfg: KvConfig,
    free: Vec<u32>,
    owners: HashMap<u64, Owner>,
    reserved_total: usize,
    stats: KvStats,
    prefix: PrefixCache,
}

impl PagedKvManager {
    /// Builds the pool with `cfg.total_blocks` blocks (callers resolve a
    /// zero `total_blocks` against the engine capacity model first).
    pub fn new(cfg: KvConfig) -> PagedKvManager {
        assert!(cfg.block_tokens > 0, "block_tokens must be positive");
        let total = u32::try_from(cfg.total_blocks).expect("block pool fits u32 ids");
        PagedKvManager {
            cfg,
            // LIFO free list popping ascending ids first keeps
            // allocation order deterministic and test-friendly.
            free: (0..total).rev().collect(),
            owners: HashMap::new(),
            reserved_total: 0,
            stats: KvStats::default(),
            prefix: PrefixCache::default(),
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// Lifetime accounting counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Blocks needed to hold `tokens` tokens.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.cfg.block_tokens)
    }

    /// Blocks currently allocated on device.
    pub fn used(&self) -> usize {
        self.cfg.total_blocks - self.free.len()
    }

    /// Device occupancy fraction (used / total). Zero for an empty pool.
    pub fn occupancy(&self) -> f64 {
        if self.cfg.total_blocks == 0 {
            0.0
        } else {
            self.used() as f64 / self.cfg.total_blocks as f64
        }
    }

    /// Fraction of the reservation budget still available — the KV
    /// headroom signal the admission policy reads.
    pub fn reserve_headroom(&self) -> f64 {
        let budget = (self.cfg.total_blocks as f64 * self.cfg.oversubscription).floor();
        if budget <= 0.0 {
            0.0
        } else {
            ((budget - self.reserved_total as f64) / budget).max(0.0)
        }
    }

    /// Whether device occupancy is above the spill watermark (the
    /// scheduler should spill the coldest request).
    pub fn above_watermark(&self) -> bool {
        self.occupancy() > self.cfg.spill_watermark
    }

    /// Reserves worst-case capacity for request `id`.
    ///
    /// # Errors
    ///
    /// [`KvError::NeverFits`] when the worst case exceeds the whole
    /// pool; [`KvError::NoHeadroom`] when the reservation budget
    /// (`total * oversubscription`) is exhausted.
    pub fn reserve(&mut self, id: u64, worst_case_tokens: usize) -> Result<Reservation, KvError> {
        let want = self.blocks_for(worst_case_tokens);
        if want > self.cfg.total_blocks {
            return Err(KvError::NeverFits {
                want,
                total: self.cfg.total_blocks,
            });
        }
        let budget = (self.cfg.total_blocks as f64 * self.cfg.oversubscription).floor() as usize;
        let available = budget.saturating_sub(self.reserved_total);
        if want > available {
            return Err(KvError::NoHeadroom { want, available });
        }
        self.reserved_total += want;
        let prev = self.owners.insert(
            id,
            Owner {
                blocks: Vec::new(),
                reserved: want,
            },
        );
        assert!(prev.is_none(), "request {id} reserved twice");
        Ok(Reservation { blocks: want })
    }

    /// Grows request `id`'s allocation to cover `tokens` tokens,
    /// returning how many new blocks were allocated.
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfBlocks`] when the free list runs dry (only
    /// possible under oversubscription > 1.0 — the scheduler must spill
    /// a victim and retry).
    pub fn grow_to(&mut self, id: u64, tokens: usize) -> Result<usize, KvError> {
        let want = self.blocks_for(tokens);
        let have = self.owners.get(&id).expect("unknown request").blocks.len();
        if want <= have {
            return Ok(0);
        }
        let need = want - have;
        if need > self.free.len() {
            return Err(KvError::OutOfBlocks);
        }
        for _ in 0..need {
            let b = self.free.pop().expect("checked above");
            self.owners
                .get_mut(&id)
                .expect("unknown request")
                .blocks
                .push(b);
        }
        self.stats.allocated += need as u64;
        self.stats.peak_used = self.stats.peak_used.max(self.used());
        Ok(need)
    }

    /// Blocks currently held by request `id`.
    pub fn held(&self, id: u64) -> usize {
        self.owners.get(&id).map_or(0, |o| o.blocks.len())
    }

    /// Releases request `id` entirely (terminal state: finished, timed
    /// out, evicted, shed after reservation). Its device blocks return
    /// to the free list as `freed`.
    pub fn release(&mut self, id: u64) {
        let Some(owner) = self.owners.remove(&id) else {
            return;
        };
        self.reserved_total -= owner.reserved;
        self.stats.freed += owner.blocks.len() as u64;
        self.free_blocks(owner.blocks);
    }

    /// Spills request `id`'s device blocks to host: the blocks return to
    /// the free list as `spilled`, the reservation is dropped (the
    /// request re-queues and re-reserves on restore), and the caller
    /// keeps the host copy's token count.
    pub fn spill(&mut self, id: u64) -> usize {
        let Some(owner) = self.owners.remove(&id) else {
            return 0;
        };
        self.reserved_total -= owner.reserved;
        let n = owner.blocks.len();
        self.stats.spilled += n as u64;
        self.stats.evictions += 1;
        self.free_blocks(owner.blocks);
        n
    }

    /// Picks the spill victim among `candidates`: the request holding
    /// the most device blocks, ties broken by the higher id (newest
    /// first, so the oldest request of a size class survives).
    /// Deterministic by construction.
    pub fn spill_victim(&self, candidates: impl Iterator<Item = u64>) -> Option<u64> {
        candidates
            .filter(|id| self.held(*id) > 0)
            .max_by_key(|id| (self.held(*id), *id))
    }

    /// Re-allocates `tokens` worth of blocks for a request restoring
    /// from a host copy, counting them as `restored` as well as
    /// `allocated`.
    ///
    /// # Errors
    ///
    /// Propagates [`PagedKvManager::reserve`] / [`PagedKvManager::grow_to`] failures.
    pub fn restore(
        &mut self,
        id: u64,
        tokens: usize,
        worst_case_tokens: usize,
    ) -> Result<usize, KvError> {
        self.reserve(id, worst_case_tokens)?;
        match self.grow_to(id, tokens) {
            Ok(n) => {
                self.stats.restored += n as u64;
                Ok(n)
            }
            Err(e) => {
                // Roll the reservation back so the request can retry
                // after a spill frees room.
                let owner = self.owners.remove(&id).expect("just reserved");
                self.reserved_total -= owner.reserved;
                debug_assert!(owner.blocks.is_empty());
                Err(e)
            }
        }
    }

    /// A rank death invalidates every device block: each block is
    /// sharded across all TP ranks, so losing one rank corrupts them
    /// all. Every owner's blocks (prefix cache included) are counted
    /// `lost_to_dead_rank` and returned to the free list; reservations
    /// are dropped (survivor requests re-reserve on their recovery
    /// path); the pool is then resized to `new_total` (the shrunken TP
    /// degree stores fewer tokens: the survivors hold more weights
    /// each). Returns the number of lost blocks.
    pub fn lose_to_dead_rank(&mut self, new_total: usize) -> u64 {
        let mut lost = 0u64;
        for (_, owner) in self.owners.drain() {
            lost += owner.blocks.len() as u64;
        }
        lost += self.prefix.blocks as u64;
        self.prefix = PrefixCache::default();
        self.reserved_total = 0;
        self.stats.lost_to_dead_rank += lost;
        let total = u32::try_from(new_total).expect("block pool fits u32 ids");
        self.cfg.total_blocks = new_total;
        self.free = (0..total).rev().collect();
        lost
    }

    /// Looks up `prefix_id` in the prefix cache: a hit returns the
    /// cached token count (the admission path skips that much prefill).
    pub fn prefix_lookup(&mut self, prefix_id: u64) -> Option<usize> {
        let hit = self.prefix.entries.get(&prefix_id).copied();
        if hit.is_some() {
            self.stats.prefix_hits += 1;
        }
        hit
    }

    /// Inserts a just-prefilled prefix into the cache, pinning its
    /// blocks (they are owned by the cache, not the inserting request).
    /// No-op when the prefix is already cached or the pool lacks room —
    /// the cache never causes pressure.
    pub fn prefix_insert(&mut self, prefix_id: u64, tokens: usize) {
        if tokens == 0 || self.prefix.entries.contains_key(&prefix_id) {
            return;
        }
        let blocks = self.blocks_for(tokens);
        let budget = (self.cfg.total_blocks as f64 * self.cfg.oversubscription).floor() as usize;
        if blocks > self.free.len() || self.reserved_total + blocks > budget {
            return;
        }
        self.reserved_total += blocks;
        for _ in 0..blocks {
            self.free.pop().expect("checked above");
        }
        self.stats.allocated += blocks as u64;
        self.stats.peak_used = self.stats.peak_used.max(self.used());
        self.prefix.entries.insert(prefix_id, tokens);
        self.prefix.blocks += blocks;
    }

    /// Tears the prefix cache down (end of run), freeing its blocks.
    pub fn drop_prefix_cache(&mut self) {
        self.stats.freed += self.prefix.blocks as u64;
        self.reserved_total -= self.prefix.blocks;
        // Block identity of cache-held blocks is not tracked per entry;
        // restore the free list by extending with synthetic ids is
        // wrong — instead rebuild: cache blocks were popped from the
        // free list, so push back that many of the lowest missing ids.
        // Simpler and equivalent for accounting: recompute the free
        // list from scratch over non-owned blocks.
        let total = u32::try_from(self.cfg.total_blocks).expect("fits");
        let mut owned: Vec<u32> = self
            .owners
            .values()
            .flat_map(|o| o.blocks.iter().copied())
            .collect();
        owned.sort_unstable();
        let mut free: Vec<u32> = (0..total)
            .filter(|b| owned.binary_search(b).is_err())
            .collect();
        free.reverse();
        self.free = free;
        self.prefix = PrefixCache::default();
    }
}

/// The prefix cache: shared prompt prefixes whose KV blocks stay
/// resident so repeat arrivals skip their prefix's prefill.
#[derive(Debug, Clone, Default)]
struct PrefixCache {
    /// `prefix_id -> cached token count`.
    entries: HashMap<u64, usize>,
    /// Total blocks pinned by the cache.
    blocks: usize,
}

impl PagedKvManager {
    fn free_blocks(&mut self, mut blocks: Vec<u32>) {
        // Deterministic free order: descending ids so the LIFO pop
        // hands out ascending ids again.
        blocks.sort_unstable_by(|a, b| b.cmp(a));
        self.free.extend(blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(total: usize, over: f64) -> PagedKvManager {
        PagedKvManager::new(KvConfig {
            block_tokens: 16,
            total_blocks: total,
            spill_watermark: 0.9,
            oversubscription: over,
        })
    }

    #[test]
    fn conservative_reservations_never_oom() {
        let mut kv = mgr(10, 1.0);
        // Two requests with worst cases of 80 tokens (5 blocks) each fill
        // the reservation budget exactly.
        kv.reserve(1, 80).unwrap();
        kv.reserve(2, 80).unwrap();
        assert_eq!(
            kv.reserve(3, 16).unwrap_err(),
            KvError::NoHeadroom {
                want: 1,
                available: 0
            }
        );
        // Growth within the reservation can never fail.
        assert_eq!(kv.grow_to(1, 80).unwrap(), 5);
        assert_eq!(kv.grow_to(2, 80).unwrap(), 5);
        assert_eq!(kv.used(), 10);
        kv.release(1);
        kv.release(2);
        assert_eq!(kv.used(), 0);
        assert!(kv.stats().balances());
        assert_eq!(kv.stats().allocated, 10);
        assert_eq!(kv.stats().freed, 10);
        assert_eq!(kv.stats().peak_used, 10);
    }

    #[test]
    fn worst_case_larger_than_pool_never_fits() {
        let mut kv = mgr(4, 1.0);
        assert_eq!(
            kv.reserve(1, 100).unwrap_err(),
            KvError::NeverFits { want: 7, total: 4 }
        );
    }

    #[test]
    fn oversubscription_spills_deterministically() {
        let mut kv = mgr(8, 2.0);
        kv.reserve(1, 96).unwrap(); // 6 blocks worst case
        kv.reserve(2, 96).unwrap(); // 6 more: only legal because 2x budget
        kv.grow_to(1, 96).unwrap();
        assert_eq!(kv.grow_to(2, 48).unwrap_err(), KvError::OutOfBlocks);
        // Victim selection: request 1 holds 6 blocks, request 2 holds 0.
        let victim = kv.spill_victim([1u64, 2].into_iter()).unwrap();
        assert_eq!(victim, 1);
        assert_eq!(kv.spill(victim), 6);
        kv.grow_to(2, 48).unwrap();
        kv.release(2);
        // Restore the spilled request from its host copy.
        assert_eq!(kv.restore(1, 96, 96).unwrap(), 6);
        kv.release(1);
        let s = kv.stats();
        assert!(s.balances(), "{s:?}");
        assert_eq!(s.spilled, 6);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.restored, 6);
    }

    #[test]
    fn rank_death_loses_every_device_block_and_shrinks_the_pool() {
        let mut kv = mgr(10, 1.0);
        kv.reserve(1, 64).unwrap();
        kv.grow_to(1, 64).unwrap(); // 4 blocks
        kv.prefix_insert(99, 32); // 2 cache blocks
        let lost = kv.lose_to_dead_rank(8);
        assert_eq!(lost, 6);
        assert_eq!(kv.config().total_blocks, 8);
        assert_eq!(kv.used(), 0);
        assert_eq!(kv.held(1), 0);
        // The dead request re-reserves on its recovery path.
        kv.restore(1, 64, 64).unwrap();
        kv.release(1);
        let s = kv.stats();
        assert!(s.balances(), "{s:?}");
        assert_eq!(s.lost_to_dead_rank, 6);
    }

    #[test]
    fn prefix_cache_hits_and_teardown_balance() {
        let mut kv = mgr(10, 1.0);
        assert_eq!(kv.prefix_lookup(7), None);
        kv.prefix_insert(7, 48); // 3 blocks pinned
        assert_eq!(kv.prefix_lookup(7), Some(48));
        assert_eq!(kv.prefix_lookup(7), Some(48));
        assert_eq!(kv.stats().prefix_hits, 2);
        assert_eq!(kv.used(), 3);
        // Reservations see the pinned blocks as spoken for.
        assert!(kv.reserve(1, 10 * 16).is_err());
        kv.reserve(1, 7 * 16).unwrap();
        kv.grow_to(1, 7 * 16).unwrap();
        kv.release(1);
        kv.drop_prefix_cache();
        assert_eq!(kv.used(), 0);
        assert!(kv.stats().balances());
    }

    #[test]
    fn block_ids_are_deterministic_across_identical_runs() {
        let run = || {
            let mut kv = mgr(6, 1.0);
            kv.reserve(1, 32).unwrap();
            kv.reserve(2, 32).unwrap();
            kv.grow_to(1, 32).unwrap();
            kv.grow_to(2, 32).unwrap();
            kv.release(1);
            kv.reserve(3, 32).unwrap();
            kv.grow_to(3, 32).unwrap();
            let mut held: Vec<(u64, usize)> =
                [2u64, 3].iter().map(|&id| (id, kv.held(id))).collect();
            held.sort_unstable();
            (held, kv.used(), kv.stats())
        };
        assert_eq!(run(), run());
    }
}
