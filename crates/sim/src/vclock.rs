//! Vector clocks for happens-before tracking.
//!
//! A [`VClock`] maps thread indices to epochs. The sanitizer in the
//! MSCCL++ interpreter keeps one clock per simulated thread block and one
//! per synchronization cell: signals *release* (join the signaller's
//! clock into the cell's), waits *acquire* (join the cell's clock into
//! the waiter's). Two accesses are then ordered iff the later thread's
//! clock has caught up with the earlier access's epoch — the standard
//! vector-clock happens-before test.
//!
//! The static verifier (`commverify`) uses the same type to compute
//! reachability over its happens-before DAG.

/// A sparse-tailed vector clock: component `i` is thread `i`'s epoch.
///
/// Missing components read as zero, so clocks over differently-sized
/// thread sets compare cleanly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The empty clock (all components zero).
    pub fn new() -> VClock {
        VClock::default()
    }

    /// Component `i`, zero if never set.
    pub fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// Sets component `i` to `v`, growing the clock as needed.
    pub fn set(&mut self, i: usize, v: u64) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] = v;
    }

    /// Increments component `i` and returns the new value.
    pub fn bump(&mut self, i: usize) -> u64 {
        let v = self.get(i) + 1;
        self.set(i, v);
        v
    }

    /// Componentwise maximum: `self = max(self, other)`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Whether every component of `self` is `>=` the corresponding
    /// component of `other` (i.e. `other`'s knowledge is contained).
    pub fn dominates(&self, other: &VClock) -> bool {
        (0..other.0.len().max(self.0.len())).all(|i| self.get(i) >= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_takes_componentwise_max() {
        let mut a = VClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn missing_components_read_zero_and_dominance_holds() {
        let mut a = VClock::new();
        a.set(3, 2);
        assert_eq!(a.get(7), 0);
        let mut b = VClock::new();
        b.set(3, 1);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        b.set(0, 1);
        assert!(!a.dominates(&b));
    }

    #[test]
    fn bump_increments_from_zero() {
        let mut c = VClock::new();
        assert_eq!(c.bump(4), 1);
        assert_eq!(c.bump(4), 2);
        assert_eq!(c.get(4), 2);
    }
}
