//! Dependency-graph recording for critical-path profiling.
//!
//! When profiling is enabled ([`crate::Engine::enable_profiling`]), the
//! engine records one [`DepNode`] per executed process step, together
//! with the reason the step began (its [`WakeCause`]) and every resource
//! acquisition the step performed. Cell updates issued by a step are
//! recorded as [`IssueRec`]s; when such an update later wakes a blocked
//! process, the woken process's next node carries a
//! [`WakeCause::Signal`] edge back to the issuing node.
//!
//! Together these edges form the happens-before DAG of the execution —
//! per-process program order, spawn edges, resource grants, and
//! signal/wait deliveries — which is exactly what a critical-path walk
//! needs: starting from the last-finishing node, every instant of the
//! makespan can be attributed to the step, wait, or transfer that bounded
//! it. The walk itself (and what-if re-timing over the same graph) lives
//! in the `profile` crate; this module only records.
//!
//! Recording is allocation-light: nodes are appended to flat vectors,
//! labels reuse the engine's interned label table, and nothing is
//! recorded unless profiling was explicitly enabled.

use crate::time::Time;

/// Why a recorded step began when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeCause {
    /// First step of a process spawned from outside any step (a root).
    Root,
    /// First step of a process spawned during another process's step;
    /// `node` is the spawning step.
    SpawnedBy {
        /// Index of the spawning node in [`DepGraph::nodes`].
        node: u32,
    },
    /// Scheduled by the process's own previous step: a yield expiring, or
    /// a wait whose condition was already satisfied.
    Seq,
    /// Woken by a cell update; `issue` indexes [`DepGraph::issues`] and
    /// names the step that scheduled the update.
    Signal {
        /// Index of the waking update in [`DepGraph::issues`].
        issue: u32,
    },
}

/// One resource acquisition performed by a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireRec {
    /// Index of the acquired resource (matches
    /// [`DepGraph::resource_labels`]).
    pub resource: usize,
    /// Requested start instant.
    pub earliest: Time,
    /// Actual start (later than `earliest` when queued behind earlier
    /// work on the same resource).
    pub start: Time,
    /// Completion instant; the resource is busy over `[start, done]`.
    pub done: Time,
}

/// One executed process step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepNode {
    /// Stable index of the process.
    pub proc: usize,
    /// Interned label of the process (resolve with [`DepGraph::label`]).
    pub label: u32,
    /// When the step began executing.
    pub begin: Time,
    /// End of the step's busy window (`begin + d` for a yield of `d`,
    /// `begin` for waits and completion).
    pub end: Time,
    /// Why the step began when it did.
    pub cause: WakeCause,
    /// The same process's previous step, if any.
    pub prev: Option<u32>,
    /// Resource acquisitions performed by this step, in order.
    pub acquires: Vec<AcquireRec>,
}

/// A cell update scheduled by a step (a signal, FIFO push, barrier
/// arrival, or LL-flag deposit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRec {
    /// The issuing node.
    pub node: u32,
    /// When the update was issued (the issuing step's begin instant).
    pub at: Time,
    /// When the update lands (wakes waiters).
    pub deliver_at: Time,
}

/// The recorded dependency graph of one execution.
///
/// Node indices are a valid topological order: every edge (cause, prev,
/// issue) points at a strictly smaller index.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DepGraph {
    /// Every executed step, in execution order.
    pub nodes: Vec<DepNode>,
    /// Every cell update issued while profiling, in issue order.
    pub issues: Vec<IssueRec>,
    /// Interned process-label table (snapshot at take time).
    pub labels: Vec<String>,
    /// Resource labels in allocation order (snapshot at take time).
    pub resource_labels: Vec<String>,
}

impl DepGraph {
    /// Resolves a node's process label.
    pub fn label(&self, node: &DepNode) -> &str {
        &self.labels[node.label as usize]
    }

    /// Resolves a resource label (empty if the resource was never
    /// labeled).
    pub fn resource_label(&self, resource: usize) -> &str {
        self.resource_labels
            .get(resource)
            .map_or("", String::as_str)
    }

    /// The last-finishing node — where a critical-path walk starts. Ties
    /// on the end instant break toward the later-recorded node.
    pub fn last_node(&self) -> Option<u32> {
        self.nodes
            .iter()
            .enumerate()
            .max_by_key(|(i, n)| (n.end, *i))
            .map(|(i, _)| i as u32)
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Recording state owned by the engine while profiling is enabled.
#[derive(Debug, Default)]
pub(crate) struct ProfState {
    pub(crate) nodes: Vec<DepNode>,
    pub(crate) issues: Vec<IssueRec>,
    /// Per-process node currently being executed (open between step begin
    /// and step end).
    open: Vec<Option<u32>>,
    /// Per-process most recently closed node.
    last: Vec<Option<u32>>,
    /// Per-process cause for the next node to open.
    pending: Vec<WakeCause>,
}

impl ProfState {
    /// Registers a newly spawned process. `origin` is the node of the
    /// spawning step, if the spawn happened inside one.
    pub(crate) fn on_spawn(&mut self, origin: Option<u32>) {
        self.open.push(None);
        self.last.push(None);
        self.pending
            .push(origin.map_or(WakeCause::Root, |node| WakeCause::SpawnedBy { node }));
    }

    /// Opens a node for the step that is about to execute.
    pub(crate) fn open_node(&mut self, proc: usize, label: u32, begin: Time) {
        let cause = std::mem::replace(&mut self.pending[proc], WakeCause::Seq);
        let id = self.nodes.len() as u32;
        self.nodes.push(DepNode {
            proc,
            label,
            begin,
            end: begin,
            cause,
            prev: self.last[proc],
            acquires: Vec::new(),
        });
        self.open[proc] = Some(id);
    }

    /// Closes the process's open node with the step's busy-window end.
    pub(crate) fn close_node(&mut self, proc: usize, end: Time) {
        if let Some(id) = self.open[proc].take() {
            self.nodes[id as usize].end = end;
            self.last[proc] = Some(id);
        }
    }

    /// The node currently executing for `proc` (inside its step).
    pub(crate) fn open_of(&self, proc: usize) -> Option<u32> {
        self.open[proc]
    }

    /// Records an acquisition on the process's open node.
    pub(crate) fn on_acquire(
        &mut self,
        proc: usize,
        resource: usize,
        earliest: Time,
        start: Time,
        done: Time,
    ) {
        if let Some(id) = self.open[proc] {
            self.nodes[id as usize].acquires.push(AcquireRec {
                resource,
                earliest,
                start,
                done,
            });
        }
    }

    /// Records a cell update issued by the process's open node, returning
    /// the issue index to stamp on the queued event (`u32::MAX` when the
    /// issuer has no open node).
    pub(crate) fn on_issue(&mut self, proc: usize, at: Time, deliver_at: Time) -> u32 {
        let Some(node) = self.open[proc] else {
            return u32::MAX;
        };
        let id = self.issues.len() as u32;
        self.issues.push(IssueRec {
            node,
            at,
            deliver_at,
        });
        id
    }

    /// Marks the cause of `proc`'s next node: it was woken by `issue`.
    pub(crate) fn on_signal_wake(&mut self, proc: usize, issue: u32) {
        if issue != u32::MAX {
            self.pending[proc] = WakeCause::Signal { issue };
        }
    }
}
