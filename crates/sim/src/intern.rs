//! A deterministic string interner that stores each distinct string
//! exactly once.
//!
//! The engine's label table and the metrics counter registry both map
//! strings to small dense ids on hot paths (every span, every counter
//! increment). Two properties matter there:
//!
//! 1. **Single storage.** Each distinct string is owned once, in the
//!    id-indexed `strings` vector. The lookup index maps a 64-bit FNV-1a
//!    hash to the ids sharing that hash, so `get_or_intern` allocates at
//!    most once per *distinct* string — never per call, and never a
//!    second owning copy as a map key.
//! 2. **Cheap lookups.** Hashes are FNV-1a (a few instructions per byte,
//!    no SipHash setup) and the bucket map uses an identity hasher, so a
//!    hot-path lookup is one hash pass plus one array probe.
//!
//! Determinism: ids are assigned in first-seen order and no iteration
//! order of the bucket map is ever observable.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Hasher that passes an already-mixed `u64` key through unchanged.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher is only used with u64 keys");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

pub(crate) type IdentityMap<V> = HashMap<u64, V, BuildHasherDefault<IdentityHasher>>;

/// FNV-1a over the string's bytes. Deterministic across runs and
/// platforms (unlike the std `RandomState`), and fast on the short
/// labels the simulator uses.
#[inline]
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash collisions are astronomically rare on label-table scales, so the
/// per-hash id list is a single inline id in the common case.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

/// An append-only string → dense-id table with single-copy storage.
#[derive(Debug, Default, Clone)]
pub(crate) struct Interner {
    strings: Vec<String>,
    buckets: IdentityMap<Bucket>,
}

impl Interner {
    /// Returns the id for `s`, interning it first if unseen. Allocates
    /// only on the first occurrence of a distinct string.
    pub(crate) fn get_or_intern(&mut self, s: &str) -> u32 {
        let h = fnv1a(s);
        if let Some(bucket) = self.buckets.get_mut(&h) {
            match bucket {
                Bucket::One(id) => {
                    if self.strings[*id as usize] == s {
                        return *id;
                    }
                    let id = *id;
                    let new = Self::push(&mut self.strings, s);
                    *bucket = Bucket::Many(vec![id, new]);
                    new
                }
                Bucket::Many(ids) => {
                    if let Some(&id) = ids.iter().find(|&&id| self.strings[id as usize] == s) {
                        return id;
                    }
                    let new = Self::push(&mut self.strings, s);
                    ids.push(new);
                    new
                }
            }
        } else {
            let id = Self::push(&mut self.strings, s);
            self.buckets.insert(h, Bucket::One(id));
            id
        }
    }

    /// The id for `s` if it is already interned (no mutation).
    pub(crate) fn get(&self, s: &str) -> Option<u32> {
        match self.buckets.get(&fnv1a(s))? {
            Bucket::One(id) => (self.strings[*id as usize] == s).then_some(*id),
            Bucket::Many(ids) => ids
                .iter()
                .copied()
                .find(|&id| self.strings[id as usize] == s),
        }
    }

    fn push(strings: &mut Vec<String>, s: &str) -> u32 {
        let id = u32::try_from(strings.len()).expect("interner overflow");
        strings.push(s.to_owned());
        id
    }

    /// Resolves an id.
    pub(crate) fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct interned strings.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.strings.len()
    }

    /// The id-indexed string table (for snapshotting into traces and
    /// dependency graphs).
    pub(crate) fn strings(&self) -> &[String] {
        &self.strings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_each_distinct_string_once() {
        let mut i = Interner::default();
        let a = i.get_or_intern("allreduce");
        let b = i.get_or_intern("wait.mem_sem");
        assert_ne!(a, b);
        // Repeat lookups return the same id and add no storage.
        assert_eq!(i.get_or_intern("allreduce"), a);
        assert_eq!(i.get_or_intern("wait.mem_sem"), b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "allreduce");
        assert_eq!(i.resolve(b), "wait.mem_sem");
        assert_eq!(i.get("allreduce"), Some(a));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut i = Interner::default();
        for (n, s) in ["a", "b", "c", "a", "d", "b"].iter().enumerate() {
            let id = i.get_or_intern(s);
            match n {
                0 | 3 => assert_eq!(id, 0),
                1 | 5 => assert_eq!(id, 1),
                2 => assert_eq!(id, 2),
                4 => assert_eq!(id, 3),
                _ => unreachable!(),
            }
        }
        assert_eq!(i.strings(), ["a", "b", "c", "d"]);
    }

    #[test]
    fn survives_many_labels_without_collision_loss() {
        let mut i = Interner::default();
        let ids: Vec<u32> = (0..10_000)
            .map(|n| i.get_or_intern(&format!("kernel {} tb{}", n % 100, n)))
            .collect();
        assert_eq!(i.len(), 10_000);
        for (n, &id) in ids.iter().enumerate() {
            assert_eq!(i.resolve(id), format!("kernel {} tb{}", n % 100, n));
        }
    }
}
