//! The cooperative process abstraction.

use crate::engine::{CellId, Ctx};
use crate::time::Duration;

/// What a process wants the engine to do after a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Run this process again after the given span of virtual time elapses.
    ///
    /// `Yield(Duration::ZERO)` reschedules at the same instant (after all
    /// events already queued for that instant).
    Yield(Duration),
    /// Suspend until the cell's value reaches at least `at_least`.
    ///
    /// If the condition already holds, the process is rescheduled immediately.
    WaitCell {
        /// The cell to watch.
        cell: CellId,
        /// Threshold that unblocks the process.
        at_least: u64,
    },
    /// Like [`Step::WaitCell`], but with a deadline: if the condition is
    /// still unsatisfied after `timeout` of virtual time, the run aborts
    /// with a typed [`crate::TimeoutError`] naming this process's open
    /// span stack, instead of hanging until quiescence.
    WaitCellTimeout {
        /// The cell to watch.
        cell: CellId,
        /// Threshold that unblocks the process.
        at_least: u64,
        /// Maximum virtual time to stay blocked.
        timeout: Duration,
    },
    /// The process has finished; it will never be stepped again.
    Done,
}

/// A cooperative simulation process.
///
/// A process models one independently-progressing hardware context: a GPU
/// thread block interpreting a kernel instruction stream, or a CPU proxy
/// thread draining a port-channel FIFO. On every [`step`](Process::step) the
/// process performs an arbitrary amount of *instantaneous* work against the
/// world and then tells the engine when (or on what condition) to run it
/// next.
pub trait Process<W> {
    /// Advance this process by one scheduling quantum.
    fn step(&mut self, ctx: &mut Ctx<'_, W>) -> Step;

    /// A short label used in deadlock diagnostics.
    fn label(&self) -> String {
        "<unnamed process>".to_owned()
    }
}

impl<W, F> Process<W> for F
where
    F: FnMut(&mut Ctx<'_, W>) -> Step,
{
    fn step(&mut self, ctx: &mut Ctx<'_, W>) -> Step {
        self(ctx)
    }

    fn label(&self) -> String {
        "<closure process>".to_owned()
    }
}
