//! Optional execution tracing: records every process step as a
//! *duration* (begin/end) event plus explicitly-opened spans, and exports
//! the timeline in the Chrome trace-event JSON format (`chrome://tracing`
//! / [Perfetto](https://ui.perfetto.dev)), which makes kernel schedules,
//! proxy activity, and link contention visually inspectable.
//!
//! Labels are interned once (at process spawn or first span use) and
//! events store a small index, so recording does not allocate per step.

use crate::time::Time;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A process step began executing (Chrome `B`).
    StepBegin,
    /// The step's busy window ended (Chrome `E`). For `Step::Yield(d)` the
    /// end is `d` after the begin; for waits and completion it is
    /// instantaneous.
    StepEnd,
    /// An explicitly-opened span began (Chrome async `b`).
    SpanBegin,
    /// An explicitly-opened span ended (Chrome async `e`).
    SpanEnd,
    /// A point-in-time marker (Chrome `i`).
    Instant,
    /// A named counter sample (Chrome `C`): renders as a step-function
    /// counter track in Perfetto (FIFO depths, queue occupancies, ...).
    Counter(u64),
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual instant of the event.
    pub at: Time,
    /// Stable index of the process.
    pub proc_index: usize,
    /// Interned label index; resolve with [`Trace::label`].
    pub label: u32,
    /// Event kind.
    pub kind: TraceEventKind,
}

/// A recorded execution timeline.
///
/// Obtained from [`crate::Engine::take_trace`]; the label table is
/// attached at take time.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    pub(crate) labels: Vec<String>,
}

impl Trace {
    pub(crate) fn push(&mut self, at: Time, proc_index: usize, label: u32, kind: TraceEventKind) {
        self.events.push(TraceEvent {
            at,
            proc_index,
            label,
            kind,
        });
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Resolves an interned label index.
    pub fn label(&self, id: u32) -> &str {
        &self.labels[id as usize]
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-process count of `StepBegin`/`SpanBegin` events missing a
    /// matching end, *plus* ends missing a begin — zero for a trace of a
    /// run that reached quiescence or was torn down by
    /// [`crate::Engine::abort`]. Stray ends count too (they used to be
    /// silently clamped away), so a teardown that double-closes a span,
    /// or a trace segment that starts mid-span, is visible.
    pub fn unmatched_begins(&self) -> usize {
        let mut open: std::collections::BTreeMap<(usize, bool), i64> = Default::default();
        for e in &self.events {
            let key = (
                e.proc_index,
                matches!(e.kind, TraceEventKind::SpanBegin | TraceEventKind::SpanEnd),
            );
            match e.kind {
                TraceEventKind::StepBegin | TraceEventKind::SpanBegin => {
                    *open.entry(key).or_insert(0) += 1;
                }
                TraceEventKind::StepEnd | TraceEventKind::SpanEnd => {
                    *open.entry(key).or_insert(0) -= 1;
                }
                TraceEventKind::Instant | TraceEventKind::Counter(_) => {}
            }
        }
        open.values().map(|&v| v.unsigned_abs() as usize).sum()
    }

    /// Serializes the timeline as Chrome trace-event JSON: one track per
    /// process, duration (`B`/`E`) events for steps, async (`b`/`e`)
    /// events for explicit spans. Process/thread name metadata events
    /// label every track with its process label (rank/proxy names, not
    /// bare ids). Load the output in <https://ui.perfetto.dev> or
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        self.push_metadata_json(&mut out);
        self.push_events_json(&mut out);
        out.push(']');
        out
    }

    /// Emits `ph:"M"` process/thread name metadata so Perfetto renders
    /// named tracks: pid 0 is "engine", and each process's track carries
    /// the label the process registered at spawn (first step event wins).
    fn push_metadata_json(&self, out: &mut String) {
        use std::fmt::Write;
        if self.events.is_empty() {
            return;
        }
        let mut names: std::collections::BTreeMap<usize, u32> = Default::default();
        for e in &self.events {
            if matches!(e.kind, TraceEventKind::StepBegin | TraceEventKind::StepEnd) {
                names.entry(e.proc_index).or_insert(e.label);
            }
        }
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{{\"name\":\"engine\"}}}}"
        );
        for (tid, label) in names {
            let name = self.label(label).replace('"', "'");
            let _ = write!(
                out,
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
            );
        }
        out.push(',');
    }

    fn push_events_json(&self, out: &mut String) {
        use std::fmt::Write;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = self.label(e.label).replace('"', "'");
            let ts = e.at.as_us();
            let tid = e.proc_index;
            let _ = match e.kind {
                TraceEventKind::StepBegin => write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{ts:.3},\"pid\":0,\"tid\":{tid}}}"
                ),
                TraceEventKind::StepEnd => write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{ts:.3},\"pid\":0,\"tid\":{tid}}}"
                ),
                TraceEventKind::SpanBegin => write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"span\",\"id\":{tid},\"ph\":\"b\",\"ts\":{ts:.3},\"pid\":0,\"tid\":{tid}}}"
                ),
                TraceEventKind::SpanEnd => write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"span\",\"id\":{tid},\"ph\":\"e\",\"ts\":{ts:.3},\"pid\":0,\"tid\":{tid}}}"
                ),
                TraceEventKind::Instant => write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{ts:.3},\"pid\":0,\"tid\":{tid},\"s\":\"t\"}}"
                ),
                TraceEventKind::Counter(v) => write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":0,\"args\":{{\"value\":{v}}}}}"
                ),
            };
        }
    }

    /// Serializes the timeline like [`Trace::to_chrome_json`], but also
    /// renders [`TraceEventKind::Counter`] samples as Perfetto counter
    /// tracks and overlays `highlight` as a dedicated *critical-path*
    /// track (`pid` 1): one duration slice per segment, chained across
    /// the contributing process tracks with flow (`s`/`t`/`f`) arrows so
    /// the path is visually traceable through the timeline.
    pub fn to_chrome_json_with_counters(&self, highlight: &[HighlightSegment]) -> String {
        use std::fmt::Write;
        let mut out = String::from("[");
        self.push_metadata_json(&mut out);
        self.push_events_json(&mut out);
        if !self.events.is_empty() && !highlight.is_empty() {
            out.push(',');
        }
        if !highlight.is_empty() {
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"critical-path\"}}}}"
            );
        }
        for (i, seg) in highlight.iter().enumerate() {
            let name = seg.name.replace('"', "'");
            let b = seg.from.as_us();
            let e = seg.to.as_us();
            let _ = write!(
                out,
                ",{{\"name\":\"{name}\",\"cat\":\"critical-path\",\"ph\":\"B\",\"ts\":{b:.3},\"pid\":1,\"tid\":0}}\
                 ,{{\"name\":\"{name}\",\"cat\":\"critical-path\",\"ph\":\"E\",\"ts\":{e:.3},\"pid\":1,\"tid\":0}}"
            );
            // Flow arrows stitch the path across the process tracks it
            // runs through.
            let ph = if i == 0 {
                "s"
            } else if i + 1 == highlight.len() {
                "f"
            } else {
                "t"
            };
            let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
            let tid = seg.proc_index;
            let _ = write!(
                out,
                ",{{\"name\":\"critical-path\",\"cat\":\"flow\",\"id\":1,\"ph\":\"{ph}\"{bp},\"ts\":{b:.3},\"pid\":0,\"tid\":{tid}}}"
            );
        }
        out.push(']');
        out
    }
}

/// One segment of a critical path, for
/// [`Trace::to_chrome_json_with_counters`]'s highlight track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HighlightSegment {
    /// Slice name (e.g. the blame bucket and the resource or process it
    /// charges).
    pub name: String,
    /// Segment start.
    pub from: Time,
    /// Segment end.
    pub to: Time,
    /// The process whose activity this segment ran through (flow arrows
    /// bind to its track).
    pub proc_index: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctx, Duration, Engine, Process, Step};

    struct Ticker(u32);
    impl Process<()> for Ticker {
        fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
            if self.0 == 0 {
                return Step::Done;
            }
            self.0 -= 1;
            Step::Yield(Duration::from_us(1.0))
        }
        fn label(&self) -> String {
            "ticker".into()
        }
    }

    #[test]
    fn trace_records_paired_step_spans() {
        let mut e = Engine::new(());
        e.enable_tracing();
        e.spawn(Ticker(3));
        e.run().unwrap();
        let trace = e.take_trace().expect("tracing enabled");
        // 3 yields + the final Done step, each a Begin/End pair.
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.unmatched_begins(), 0);
        assert!(trace
            .events()
            .iter()
            .all(|ev| trace.label(ev.label) == "ticker"));
        // Yield steps have a 1us busy window; the Done step is instant.
        let evs = trace.events();
        assert_eq!(evs[0].kind, TraceEventKind::StepBegin);
        assert_eq!(evs[1].kind, TraceEventKind::StepEnd);
        assert_eq!((evs[1].at - evs[0].at).as_us(), 1.0);
        assert_eq!(evs[7].at, evs[6].at);
    }

    #[test]
    fn interning_shares_one_label_across_steps() {
        let mut e = Engine::new(());
        e.enable_tracing();
        e.spawn(Ticker(5));
        e.spawn(Ticker(2));
        e.run().unwrap();
        let trace = e.take_trace().unwrap();
        let first = trace.events()[0].label;
        assert!(trace.events().iter().all(|ev| ev.label == first));
        assert_eq!(trace.labels.iter().filter(|l| *l == "ticker").count(), 1);
    }

    #[test]
    fn chrome_json_has_duration_events() {
        let mut e = Engine::new(());
        e.enable_tracing();
        e.spawn(Ticker(1));
        e.run().unwrap();
        let json = e.take_trace().unwrap().to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"ticker\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
    }

    #[test]
    fn chrome_json_names_tracks_after_process_labels() {
        let mut e = Engine::new(());
        e.enable_tracing();
        e.spawn(Ticker(1));
        e.spawn(Ticker(1));
        e.run().unwrap();
        let trace = e.take_trace().unwrap();
        for json in [
            trace.to_chrome_json(),
            trace.to_chrome_json_with_counters(&[]),
        ] {
            assert!(
                json.contains("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0"),
                "{json}"
            );
            assert!(
                json.contains(
                    "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"ticker\"}"
                ),
                "{json}"
            );
            assert!(
                json.contains("\"tid\":1,\"args\":{\"name\":\"ticker\"}"),
                "{json}"
            );
        }
        // An empty trace emits no orphan metadata (still valid JSON).
        assert_eq!(Trace::default().to_chrome_json(), "[]");
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mut e = Engine::new(());
        e.spawn(Ticker(1));
        e.run().unwrap();
        assert!(e.take_trace().is_none());
    }

    #[test]
    fn explicit_spans_round_trip_through_json() {
        struct Spanner;
        impl Process<()> for Spanner {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.span_begin("phase.copy");
                ctx.span_end();
                Step::Done
            }
            fn label(&self) -> String {
                "spanner".into()
            }
        }
        let mut e = Engine::new(());
        e.enable_tracing();
        e.spawn(Spanner);
        e.run().unwrap();
        let trace = e.take_trace().unwrap();
        assert_eq!(trace.unmatched_begins(), 0);
        let json = trace.to_chrome_json();
        assert!(json.contains("\"name\":\"phase.copy\",\"cat\":\"span\""));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
    }
}
