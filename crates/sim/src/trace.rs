//! Optional execution tracing: records every process step and exports
//! the timeline in the Chrome trace-event JSON format (`chrome://tracing`
//! / Perfetto), which makes kernel schedules, proxy activity, and link
//! contention visually inspectable.

use crate::time::Time;

/// One recorded process step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual instant at which the process ran.
    pub at: Time,
    /// Stable index of the process.
    pub proc_index: usize,
    /// The process's diagnostic label at spawn time.
    pub label: String,
}

/// A recorded execution timeline.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn record(&mut self, at: Time, proc_index: usize, label: &str) {
        self.events.push(TraceEvent {
            at,
            proc_index,
            label: label.to_owned(),
        });
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the timeline as Chrome trace-event JSON (an array of
    /// instant events, one track per process).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":0,\"tid\":{},\"s\":\"t\"}}",
                e.label.replace('"', "'"),
                e.at.as_us(),
                e.proc_index
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctx, Duration, Engine, Process, Step};

    struct Ticker(u32);
    impl Process<()> for Ticker {
        fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
            if self.0 == 0 {
                return Step::Done;
            }
            self.0 -= 1;
            Step::Yield(Duration::from_us(1.0))
        }
        fn label(&self) -> String {
            "ticker".into()
        }
    }

    #[test]
    fn trace_records_every_step_in_order() {
        let mut e = Engine::new(());
        e.enable_tracing();
        e.spawn(Ticker(3));
        e.run().unwrap();
        let trace = e.take_trace().expect("tracing enabled");
        // 3 yields + the final Done step.
        assert_eq!(trace.len(), 4);
        assert!(trace
            .events()
            .windows(2)
            .all(|w| w[0].at <= w[1].at));
        assert!(trace.events().iter().all(|e| e.label == "ticker"));
    }

    #[test]
    fn chrome_json_is_wellformed_enough() {
        let mut e = Engine::new(());
        e.enable_tracing();
        e.spawn(Ticker(1));
        e.run().unwrap();
        let json = e.take_trace().unwrap().to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"ticker\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mut e = Engine::new(());
        e.spawn(Ticker(1));
        e.run().unwrap();
        assert!(e.take_trace().is_none());
    }
}
