//! Deterministic discrete-event simulation engine.
//!
//! This crate is the substrate for the MSCCL++ reproduction: it provides a
//! virtual clock, an event queue with deterministic tie-breaking, cooperative
//! *processes* (the simulated GPU thread blocks and CPU proxy threads),
//! monotonic *cells* (the simulated semaphores, FIFO counters, and barriers),
//! and *resources* (the simulated interconnect links and DMA engines, which
//! serialize work and thereby model bandwidth contention).
//!
//! The engine is generic over a *world* type `W` that holds all domain state
//! (GPU memories, topology, cost model). Processes receive `&mut W` on every
//! step, so all data movement is real: bytes are copied between simulated
//! GPU memories and reductions are actually computed, which lets benchmarks
//! verify functional correctness of every collective before trusting a
//! virtual timing.
//!
//! # Example
//!
//! ```
//! use sim::{Engine, Process, Step, Ctx, Duration};
//!
//! struct Counter { left: u32 }
//! impl Process<u64> for Counter {
//!     fn step(&mut self, ctx: &mut Ctx<'_, u64>) -> Step {
//!         if self.left == 0 {
//!             return Step::Done;
//!         }
//!         self.left -= 1;
//!         *ctx.world += 1;
//!         Step::Yield(Duration::from_ns(10.0))
//!     }
//! }
//!
//! let mut engine = Engine::new(0u64);
//! engine.spawn(Counter { left: 3 });
//! engine.run().unwrap();
//! assert_eq!(*engine.world(), 3);
//! assert_eq!(engine.now().as_ns(), 30.0);
//! ```

mod calendar;
mod depgraph;
mod engine;
mod fault;
mod intern;
mod metrics;
mod process;
pub mod telemetry;
mod time;
mod trace;
mod vclock;

pub use depgraph::{AcquireRec, DepGraph, DepNode, IssueRec, WakeCause};
pub use engine::{
    BlockedProcess, CellId, Ctx, DeadlockError, Engine, ProcId, ResourceId, SimError, SpanLabelId,
    TimeoutError,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultTarget, PathState, SimRng};
pub use metrics::{CounterId, Metrics, ResourceStat};
pub use process::{Process, Step};
pub use telemetry::{Sample, Sampler, SamplerConfig};
pub use time::{Duration, Time};
pub use trace::{HighlightSegment, Trace, TraceEvent, TraceEventKind};
pub use vclock::VClock;
