//! Virtual-time telemetry: an allocation-free periodic snapshotter over
//! [`crate::Metrics`].
//!
//! End-of-run counters answer "how much happened"; they cannot answer
//! "when did the queue start growing" or "which link saturated first
//! under the fault". The [`Sampler`] turns the metrics registry into a
//! *time series*: at every period boundary of virtual time it records
//! the delta of each tracked counter, the busy-time delta of each
//! tracked resource (utilization over the interval), and a set of
//! caller-supplied gauges (instantaneous values the registry does not
//! hold, e.g. a scheduler's queue depth).
//!
//! Everything is preallocated at construction: the ring of sample slots,
//! and each slot's counter/gauge/busy arrays. Sampling is a handful of
//! array reads and subtractions — no allocation, no hashing — so it can
//! sit inside a serving loop's hot path within the overhead budget the
//! perf gate pins (see `DESIGN.md` §17). When the ring is full the
//! oldest sample is overwritten and [`Sampler::dropped`] counts it, so a
//! bounded ring never silently loses the *fact* that it lost data.
//!
//! Export paths: [`Sampler::to_json`] (a `serve_telemetry.json`-style
//! time series) and [`Sampler::to_chrome_json`] (Perfetto counter
//! tracks, loadable beside an engine trace).

use crate::engine::ResourceId;
use crate::metrics::{CounterId, Metrics};
use crate::time::{Duration, Time};

/// Shape of a [`Sampler`]: sampling period and ring capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Virtual-time distance between samples.
    pub period: Duration,
    /// Ring capacity in samples; the oldest sample is overwritten when
    /// full (and counted in [`Sampler::dropped`]).
    pub capacity: usize,
}

impl SamplerConfig {
    /// A sampler taking one sample every `period_us` microseconds of
    /// virtual time, keeping the most recent `capacity` samples.
    pub fn new(period_us: f64, capacity: usize) -> SamplerConfig {
        SamplerConfig {
            period: Duration::from_us(period_us.max(1e-6)),
            capacity: capacity.max(1),
        }
    }
}

/// One recorded snapshot: deltas since the previous sample.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sample {
    /// Virtual instant of the sample (a period boundary).
    pub at: Time,
    /// Per-tracked-counter delta since the previous sample, in
    /// [`Sampler::counter_names`] order.
    pub counters: Vec<u64>,
    /// Caller-supplied gauge values (instantaneous, not deltas), in
    /// [`Sampler::gauge_names`] order.
    pub gauges: Vec<u64>,
    /// Per-tracked-resource busy-time delta since the previous sample,
    /// in [`Sampler::resource_labels`] order. Divide by the inter-sample
    /// gap for utilization.
    pub busy: Vec<Duration>,
}

/// The allocation-free periodic snapshotter.
#[derive(Debug, Clone)]
pub struct Sampler {
    period: Duration,
    next: Time,
    last_at: Time,
    counter_names: Vec<String>,
    counter_ids: Vec<CounterId>,
    gauge_names: Vec<String>,
    resource_labels: Vec<String>,
    resource_ids: Vec<ResourceId>,
    last_counters: Vec<u64>,
    last_busy: Vec<Duration>,
    ring: Vec<Sample>,
    head: usize,
    len: usize,
    dropped: u64,
    taken: u64,
}

impl Sampler {
    /// Builds a sampler with a fixed gauge schema. Counters and
    /// resources are registered afterwards with
    /// [`Sampler::track_counter`] / [`Sampler::track_resources`];
    /// registration must finish before the first [`Sampler::sample`].
    pub fn new(cfg: SamplerConfig, gauge_names: &[&str]) -> Sampler {
        let capacity = cfg.capacity;
        Sampler {
            period: cfg.period,
            next: Time::ZERO + cfg.period,
            last_at: Time::ZERO,
            counter_names: Vec::new(),
            counter_ids: Vec::new(),
            gauge_names: gauge_names.iter().map(|&s| s.to_owned()).collect(),
            resource_labels: Vec::new(),
            resource_ids: Vec::new(),
            last_counters: Vec::new(),
            last_busy: Vec::new(),
            ring: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            dropped: 0,
            taken: 0,
        }
    }

    /// Registers a named counter (resolved to a dense id once, here) and
    /// anchors its delta baseline at the counter's current value.
    pub fn track_counter(&mut self, metrics: &mut Metrics, name: &str) {
        let id = metrics.counter_id(name);
        self.counter_names.push(name.to_owned());
        self.counter_ids.push(id);
        self.last_counters.push(metrics.value(id));
    }

    /// Registers every *labeled* resource of the registry for busy-delta
    /// (utilization) tracking. Unlabeled resources are skipped — they
    /// are internal bookkeeping, not links.
    pub fn track_resources(&mut self, metrics: &Metrics) {
        for stat in metrics.resources() {
            if stat.label.is_empty() {
                continue;
            }
            self.resource_labels.push(stat.label.clone());
            self.resource_ids.push(stat.id);
            self.last_busy.push(stat.busy);
        }
    }

    /// The sampling period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Tracked counter names, in sample-array order.
    pub fn counter_names(&self) -> &[String] {
        &self.counter_names
    }

    /// Gauge names, in sample-array order.
    pub fn gauge_names(&self) -> &[String] {
        &self.gauge_names
    }

    /// Tracked resource labels, in sample-array order.
    pub fn resource_labels(&self) -> &[String] {
        &self.resource_labels
    }

    /// Whether `now` has crossed the next period boundary (a sample is
    /// due). The caller polls this at its own convenient points; virtual
    /// time may jump several periods between polls, in which case one
    /// sample covers the whole gap (the deltas absorb it).
    pub fn due(&self, now: Time) -> bool {
        now >= self.next
    }

    /// Records one sample at the latest period boundary at or before
    /// `now`, with deltas against the previous sample. No-op unless
    /// [`Sampler::due`]. `gauges` must match the gauge schema length.
    pub fn sample(&mut self, now: Time, metrics: &Metrics, gauges: &[u64]) {
        if !self.due(now) {
            return;
        }
        assert_eq!(
            gauges.len(),
            self.gauge_names.len(),
            "gauge values must match the schema"
        );
        // The boundary this sample is stamped with: the last one <= now.
        let periods = (now - self.next).as_ps() / self.period.as_ps();
        let at = self.next + Duration::from_ps(periods * self.period.as_ps());
        self.next = at + self.period;

        let slot = if self.len < self.ring.capacity() {
            let idx = (self.head + self.len) % self.ring.capacity();
            if idx == self.ring.len() {
                self.ring.push(Sample {
                    at,
                    counters: vec![0; self.counter_ids.len()],
                    gauges: vec![0; self.gauge_names.len()],
                    busy: vec![Duration::ZERO; self.resource_ids.len()],
                });
            }
            self.len += 1;
            idx
        } else {
            // Overwrite the oldest; its preallocated arrays are reused.
            let idx = self.head;
            self.head = (self.head + 1) % self.ring.capacity();
            self.dropped += 1;
            idx
        };
        let s = &mut self.ring[slot];
        s.at = at;
        for (i, &id) in self.counter_ids.iter().enumerate() {
            let v = metrics.value(id);
            s.counters[i] = v - self.last_counters[i];
            self.last_counters[i] = v;
        }
        for (i, &rid) in self.resource_ids.iter().enumerate() {
            let b = metrics.busy(rid);
            s.busy[i] = b.saturating_sub(self.last_busy[i]);
            self.last_busy[i] = b;
        }
        s.gauges.copy_from_slice(gauges);
        self.last_at = at;
        self.taken += 1;
    }

    /// Samples kept, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        let cap = self.ring.capacity().max(1);
        (0..self.len).map(move |i| &self.ring[(self.head + i) % cap])
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Samples overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total samples ever taken (kept + dropped).
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Serializes the series as a JSON time-series document: schema
    /// arrays once, then one compact row per sample. `utilization` is
    /// the busy delta divided by the inter-sample gap (clamped to the
    /// period for the first sample).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"period_us\":{:.3},\"dropped\":{},\"counters\":[",
            self.period.as_us(),
            self.dropped
        );
        push_names(&mut out, &self.counter_names);
        out.push_str("],\"gauges\":[");
        push_names(&mut out, &self.gauge_names);
        out.push_str("],\"resources\":[");
        push_names(&mut out, &self.resource_labels);
        out.push_str("],\"samples\":[");
        let mut prev_at = None;
        for (i, s) in self.samples().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let gap = match prev_at {
                Some(p) => s.at - p,
                None => self.period,
            };
            prev_at = Some(s.at);
            let gap_us = gap.as_us().max(1e-9);
            let _ = write!(out, "{{\"t_us\":{:.3},\"counters\":[", s.at.as_us());
            for (j, v) in s.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("],\"gauges\":[");
            for (j, v) in s.gauges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("],\"utilization\":[");
            for (j, b) in s.busy.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{:.4}", (b.as_us() / gap_us).min(1.0));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Serializes the series as Chrome trace-event JSON counter tracks
    /// (`ph:"C"`, one track per counter/gauge/resource), on `pid` so the
    /// document can be concatenated with an engine trace without track
    /// collisions. Load in <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self, pid: u32) -> String {
        use std::fmt::Write;
        let mut out = String::from("[");
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"telemetry\"}}}}"
        );
        let mut prev_at = None;
        for s in self.samples() {
            let ts = s.at.as_us();
            let gap_us = match prev_at {
                Some(p) => (s.at - p).as_us(),
                None => self.period.as_us(),
            }
            .max(1e-9);
            prev_at = Some(s.at);
            for (name, v) in self.counter_names.iter().zip(&s.counters) {
                let _ = write!(
                    out,
                    ",{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":{pid},\"args\":{{\"value\":{v}}}}}",
                    name.replace('"', "'")
                );
            }
            for (name, v) in self.gauge_names.iter().zip(&s.gauges) {
                let _ = write!(
                    out,
                    ",{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":{pid},\"args\":{{\"value\":{v}}}}}",
                    name.replace('"', "'")
                );
            }
            for (label, b) in self.resource_labels.iter().zip(&s.busy) {
                let util = (b.as_us() / gap_us).min(1.0);
                let _ = write!(
                    out,
                    ",{{\"name\":\"util {}\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":{pid},\"args\":{{\"value\":{util:.4}}}}}",
                    label.replace('"', "'")
                );
            }
        }
        out.push(']');
        out
    }
}

fn push_names(out: &mut String, names: &[String]) {
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&n.replace('"', "'"));
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: f64) -> Time {
        Time::from_ps((x * 1e6) as u64)
    }

    #[test]
    fn samples_record_counter_deltas_not_totals() {
        let mut m = Metrics::default();
        m.inc("work.items", 5);
        let mut s = Sampler::new(SamplerConfig::new(10.0, 8), &["depth"]);
        s.track_counter(&mut m, "work.items");
        // Baseline anchored at 5: the pre-existing total never leaks
        // into the first delta.
        m.inc("work.items", 3);
        assert!(!s.due(us(9.0)));
        s.sample(us(9.0), &m, &[1]); // not due: no-op
        assert_eq!(s.len(), 0);
        s.sample(us(10.0), &m, &[1]);
        m.inc("work.items", 7);
        s.sample(us(20.0), &m, &[2]);
        let got: Vec<&Sample> = s.samples().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].counters, vec![3]);
        assert_eq!(got[0].gauges, vec![1]);
        assert_eq!(got[1].counters, vec![7]);
        assert_eq!(got[1].at, us(20.0));
    }

    #[test]
    fn time_jumps_collapse_to_one_boundary_sample() {
        let mut m = Metrics::default();
        let mut s = Sampler::new(SamplerConfig::new(10.0, 8), &[]);
        s.track_counter(&mut m, "x");
        m.inc("x", 4);
        // The clock jumps 5 periods at once: one sample at the latest
        // boundary covers the gap.
        s.sample(us(52.0), &m, &[]);
        assert_eq!(s.len(), 1);
        let sm = s.samples().next().unwrap();
        assert_eq!(sm.at, us(50.0));
        assert_eq!(sm.counters, vec![4]);
        // The next boundary continues from there.
        assert!(!s.due(us(59.0)));
        assert!(s.due(us(60.0)));
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let mut m = Metrics::default();
        let mut s = Sampler::new(SamplerConfig::new(1.0, 3), &["g"]);
        s.track_counter(&mut m, "x");
        for i in 1..=5u64 {
            m.inc("x", 1);
            s.sample(us(i as f64), &m, &[i]);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.taken(), 5);
        let gauges: Vec<u64> = s.samples().map(|sm| sm.gauges[0]).collect();
        assert_eq!(gauges, vec![3, 4, 5], "oldest samples were overwritten");
        // Deltas are anchored to the previous *sample*, dropped or not.
        assert!(s.samples().all(|sm| sm.counters == vec![1]));
    }

    #[test]
    fn json_exports_schema_and_utilization() {
        let mut m = Metrics::default();
        m.add_resource();
        m.set_label(crate::engine::ResourceId(0), "egress r0");
        let mut s = Sampler::new(SamplerConfig::new(10.0, 4), &["queue_depth"]);
        s.track_counter(&mut m, "serve.completed");
        s.track_resources(&m);
        m.inc("serve.completed", 2);
        m.on_acquire(
            crate::engine::ResourceId(0),
            Duration::from_us(5.0),
            Duration::ZERO,
        );
        s.sample(us(10.0), &m, &[7]);
        let json = s.to_json();
        assert!(json.contains("\"period_us\":10.000"), "{json}");
        assert!(
            json.contains("\"counters\":[\"serve.completed\"]"),
            "{json}"
        );
        assert!(json.contains("\"gauges\":[\"queue_depth\"]"), "{json}");
        assert!(json.contains("\"resources\":[\"egress r0\"]"), "{json}");
        // 5us busy over a 10us period: utilization 0.5.
        assert!(json.contains("\"utilization\":[0.5000]"), "{json}");
        let chrome = s.to_chrome_json(2);
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        assert!(chrome.contains("\"name\":\"serve.completed\",\"ph\":\"C\""));
        assert!(chrome.contains("\"name\":\"util egress r0\""));
        assert!(chrome.contains("\"name\":\"process_name\""));
    }

    #[test]
    fn sampling_is_allocation_free_after_warmup() {
        // Indirect but deterministic: the ring's backing storage never
        // reallocates (capacity is reserved up front), and slot arrays
        // are reused on overwrite — observable as stable pointers.
        let mut m = Metrics::default();
        let mut s = Sampler::new(SamplerConfig::new(1.0, 2), &["g"]);
        s.track_counter(&mut m, "x");
        s.sample(us(1.0), &m, &[0]);
        s.sample(us(2.0), &m, &[0]);
        let p0 = s.ring.as_ptr();
        let c0 = s.ring[0].counters.as_ptr();
        for i in 3..50u64 {
            s.sample(us(i as f64), &m, &[i]);
        }
        assert_eq!(p0, s.ring.as_ptr(), "ring reallocated");
        assert_eq!(c0, s.ring[0].counters.as_ptr(), "slot arrays reallocated");
    }
}
