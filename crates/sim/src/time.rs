//! Virtual time: instants and durations with picosecond resolution.
//!
//! Picoseconds in a `u64` cover ~213 days of virtual time, far beyond any
//! simulated collective, while still resolving single-byte transfers on a
//! 450 GB/s link (~2.2 ps/byte).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time, measured in picoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time, measured in picoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The simulation start instant.
    pub const ZERO: Time = Time(0);

    /// The far future. Used as the `end` of a permanent fault window;
    /// never add a duration to it (virtual-time arithmetic would overflow).
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Raw picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: Time) -> Duration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier:?}) is after self ({self:?})"
        );
        Duration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Duration {
        Duration(ps)
    }

    /// Creates a span from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Duration {
        assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns} ns");
        Duration((ns * 1e3).round() as u64)
    }

    /// Creates a span from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Duration {
        Duration::from_ns(us * 1e3)
    }

    /// The virtual time needed to move `bytes` at `gb_per_s` gigabytes per
    /// second (1 GB = 1e9 bytes), excluding any fixed latency.
    ///
    /// # Panics
    ///
    /// Panics if `gb_per_s` is not strictly positive.
    pub fn for_transfer(bytes: u64, gb_per_s: f64) -> Duration {
        assert!(
            gb_per_s > 0.0 && gb_per_s.is_finite(),
            "invalid bandwidth: {gb_per_s} GB/s"
        );
        // bytes / (gb_per_s * 1e9 B/s) seconds = bytes * 1e3 / gb_per_s ps
        Duration(((bytes as f64) * 1e3 / gb_per_s).round() as u64)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span expressed in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This span expressed in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating sum of two spans.
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating difference of two spans (zero when `rhs` is larger).
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.duration_since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_ps(1_500_000); // 1.5 us
        assert_eq!(t.as_us(), 1.5);
        assert_eq!(t.as_ns(), 1500.0);
        let t2 = t + Duration::from_us(0.5);
        assert_eq!(t2.as_us(), 2.0);
        assert_eq!((t2 - t).as_us(), 0.5);
    }

    #[test]
    fn transfer_duration_matches_bandwidth() {
        // 1 GB at 25 GB/s = 40 ms
        let d = Duration::for_transfer(1_000_000_000, 25.0);
        assert_eq!(d.as_secs(), 0.04);
        // 1 byte at 450 GB/s is ~2.2 ps, must not truncate to zero
        let tiny = Duration::for_transfer(1, 450.0);
        assert!(tiny.as_ps() >= 2);
    }

    #[test]
    fn zero_transfer_is_zero() {
        assert_eq!(Duration::for_transfer(0, 25.0), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn duration_since_panics_when_reversed() {
        let _ = Time::from_ps(5).duration_since(Time::from_ps(10));
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Duration::for_transfer(100, 0.0);
    }

    #[test]
    fn duration_sum_and_ordering() {
        let a = Duration::from_ns(10.0);
        let b = Duration::from_ns(20.0);
        assert!(a < b);
        let s: Duration = [a, b].into_iter().sum();
        assert_eq!(s.as_ns(), 30.0);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(Time::from_ps(2_500_000).to_string(), "2.500us");
        assert_eq!(Duration::from_us(1.25).to_string(), "1.250us");
    }
}
