//! The metrics registry: named monotonic counters plus per-resource
//! accounting (busy time, bytes carried, acquisitions, queueing delay).
//!
//! Every [`crate::Engine`] owns one [`Metrics`] registry. Processes
//! increment counters through [`crate::Ctx::count`]; resource accounting
//! is updated automatically by [`crate::Ctx::acquire_after`] and by
//! explicit [`crate::Ctx::meter_bytes`] calls at transfer sites. The
//! registry is append-only and deterministic: counters iterate in name
//! order, resources in allocation order.
//!
//! Counter names are interned (single owned copy per distinct name) and
//! values live in a dense id-indexed array, so `inc` is a short hash
//! probe plus an array add — cheap enough for per-instruction accounting
//! on the simulator's hot path. Sites that increment the same counter
//! many times should resolve a [`CounterId`] once and use
//! [`Metrics::inc_id`], which skips even the hash.

use crate::engine::ResourceId;
use crate::intern::Interner;
use crate::time::Duration;

/// A pre-resolved counter handle (see [`Metrics::counter_id`]): stable
/// for the lifetime of the registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// A snapshot of one resource's accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceStat {
    /// The resource.
    pub id: ResourceId,
    /// Diagnostic label (empty if never labeled).
    pub label: String,
    /// Cumulative occupied time.
    pub busy: Duration,
    /// Cumulative bytes metered through the resource.
    pub bytes: u64,
    /// Number of acquisitions.
    pub acquires: u64,
    /// Cumulative time acquisitions spent queued behind earlier work
    /// (actual start minus requested start).
    pub queue_delay: Duration,
}

/// Monotonic counters and per-resource accounting for one engine.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    names: Interner,
    values: Vec<u64>,
    labels: Vec<String>,
    busy: Vec<Duration>,
    bytes: Vec<u64>,
    acquires: Vec<u64>,
    queue_delay: Vec<Duration>,
}

/// Counter equality is *content* equality (same name → value mapping),
/// independent of first-increment order, so two deterministic runs that
/// discover counters in different orders still compare equal.
impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        self.labels == other.labels
            && self.busy == other.busy
            && self.bytes == other.bytes
            && self.acquires == other.acquires
            && self.queue_delay == other.queue_delay
            && self.sorted_counters() == other.sorted_counters()
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn inc(&mut self, name: &str, delta: u64) {
        let id = self.counter_id(name);
        self.values[id.0 as usize] += delta;
    }

    /// Resolves a name to a stable [`CounterId`] (creating the counter at
    /// zero if new). Resolve once, then use [`Metrics::inc_id`] on hot
    /// paths.
    pub fn counter_id(&mut self, name: &str) -> CounterId {
        let id = self.names.get_or_intern(name);
        if id as usize == self.values.len() {
            self.values.push(0);
        }
        CounterId(id)
    }

    /// Adds `delta` to a pre-resolved counter: one array add.
    pub fn inc_id(&mut self, id: CounterId, delta: u64) {
        self.values[id.0 as usize] += delta;
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.names
            .get(name)
            .map_or(0, |id| self.values[id as usize])
    }

    /// Current value of a pre-resolved counter: one array read. The hot
    /// read path for periodic samplers ([`crate::telemetry::Sampler`]).
    pub fn value(&self, id: CounterId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Name/value pairs sorted by name (the deterministic iteration
    /// order, regardless of first-increment order).
    fn sorted_counters(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .names
            .strings()
            .iter()
            .enumerate()
            .map(|(i, name)| (name.as_str(), self.values[i]))
            .collect();
        v.sort_unstable_by_key(|&(name, _)| name);
        v
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.sorted_counters().into_iter()
    }

    /// Counters whose names start with `prefix`, in name order — the
    /// export path for a subsystem's counter family (e.g. `serve.` for
    /// the serving scheduler, `fault.` for recovery).
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.sorted_counters()
            .into_iter()
            .filter(move |(name, _)| name.starts_with(prefix))
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.names
            .strings()
            .iter()
            .enumerate()
            .filter(|(_, name)| name.starts_with(prefix))
            .map(|(i, _)| self.values[i])
            .sum()
    }

    pub(crate) fn add_resource(&mut self) {
        self.labels.push(String::new());
        self.busy.push(Duration::ZERO);
        self.bytes.push(0);
        self.acquires.push(0);
        self.queue_delay.push(Duration::ZERO);
    }

    pub(crate) fn set_label(&mut self, r: ResourceId, label: &str) {
        label.clone_into(&mut self.labels[r.0]);
    }

    pub(crate) fn on_acquire(&mut self, r: ResourceId, busy: Duration, queued: Duration) {
        self.busy[r.0] += busy;
        self.acquires[r.0] += 1;
        self.queue_delay[r.0] += queued;
    }

    pub(crate) fn add_bytes(&mut self, r: ResourceId, bytes: u64) {
        self.bytes[r.0] += bytes;
    }

    /// Removes busy time that an abort cancelled before it elapsed
    /// (best-effort: clamped to the accumulated total).
    pub(crate) fn cancel_busy(&mut self, r: ResourceId, overhang: Duration) {
        self.busy[r.0] = self.busy[r.0].saturating_sub(overhang);
    }

    /// Cumulative occupied time of a resource.
    pub fn busy(&self, r: ResourceId) -> Duration {
        self.busy[r.0]
    }

    /// Cumulative bytes metered through a resource.
    pub fn bytes(&self, r: ResourceId) -> u64 {
        self.bytes[r.0]
    }

    /// Snapshot of one resource's accounting.
    pub fn resource(&self, r: ResourceId) -> ResourceStat {
        ResourceStat {
            id: r,
            label: self.labels[r.0].clone(),
            busy: self.busy[r.0],
            bytes: self.bytes[r.0],
            acquires: self.acquires[r.0],
            queue_delay: self.queue_delay[r.0],
        }
    }

    /// Snapshots of every resource, in allocation order.
    pub fn resources(&self) -> Vec<ResourceStat> {
        (0..self.labels.len())
            .map(|i| self.resource(ResourceId(i)))
            .collect()
    }

    /// Number of resources tracked.
    pub fn resource_count(&self) -> usize {
        self.labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_ordered() {
        let mut m = Metrics::default();
        m.inc("b.two", 2);
        m.inc("a.one", 1);
        m.inc("b.two", 3);
        assert_eq!(m.counter("b.two"), 5);
        assert_eq!(m.counter("a.one"), 1);
        assert_eq!(m.counter("missing"), 0);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a.one", "b.two"]);
    }

    #[test]
    fn counter_sum_covers_prefix_only() {
        let mut m = Metrics::default();
        m.inc("sync.waits", 4);
        m.inc("sync.signals", 2);
        m.inc("synchronous", 100); // prefix match is string-wise
        m.inc("other", 7);
        assert_eq!(m.counter_sum("sync."), 6);
        assert_eq!(m.counter_sum("sync"), 106);
        assert_eq!(m.counter_sum("zzz"), 0);
    }

    #[test]
    fn counter_ids_are_stable_and_fast_path_matches_named_path() {
        let mut m = Metrics::default();
        let id = m.counter_id("instr.put");
        assert_eq!(m.counter("instr.put"), 0, "resolved counters exist at 0");
        m.inc_id(id, 3);
        m.inc("instr.put", 2);
        assert_eq!(m.counter_id("instr.put"), id);
        assert_eq!(m.counter("instr.put"), 5);
    }

    #[test]
    fn equality_ignores_first_increment_order() {
        let mut a = Metrics::default();
        a.inc("x", 1);
        a.inc("y", 2);
        let mut b = Metrics::default();
        b.inc("y", 2);
        b.inc("x", 1);
        assert_eq!(a, b);
        b.inc("x", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn resource_accounting_accumulates() {
        let mut m = Metrics::default();
        m.add_resource();
        let r = ResourceId(0);
        m.set_label(r, "egress r0");
        m.on_acquire(r, Duration::from_ns(10.0), Duration::ZERO);
        m.on_acquire(r, Duration::from_ns(10.0), Duration::from_ns(10.0));
        m.add_bytes(r, 2270);
        let s = m.resource(r);
        assert_eq!(s.label, "egress r0");
        assert_eq!(s.busy.as_ns(), 20.0);
        assert_eq!(s.bytes, 2270);
        assert_eq!(s.acquires, 2);
        assert_eq!(s.queue_delay.as_ns(), 10.0);
        assert_eq!(m.resources().len(), 1);
    }
}
