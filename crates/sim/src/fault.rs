//! Deterministic fault injection: a seed-driven schedule of link, NIC,
//! and rank faults applied at event-queue granularity.
//!
//! A [`FaultPlan`] is attached to an [`crate::Engine`] before a run. It is
//! pure data — a list of `(window, target, kind)` events plus a seed — so
//! the same plan on the same program always produces bit-identical virtual
//! timings and world state. The engine itself only consults the plan for
//! the default wait watchdog ([`FaultPlan::wait_timeout`]); domain layers
//! (the hardware model, CPU proxies, collectives) interpret the targets,
//! which keeps the simulator core domain-agnostic: targets are plain
//! indices that the world maps onto ranks, links, and NICs.

use crate::time::{Duration, Time};

/// A small deterministic PRNG (splitmix64) used for fault-plan generation
/// and retry-backoff jitter.
///
/// Not cryptographic; chosen because the whole state is one `u64`, so
/// seeding from a plan seed plus a topology coordinate is trivial and the
/// stream is identical on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams; the same seed always gives the same stream.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }
}

/// What a fault event applies to.
///
/// Targets are plain indices; the domain layer decides what they mean
/// (for this reproduction: global rank numbers).
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// The path between two endpoints, matched in either direction
    /// (a physical link is bidirectional).
    Link {
        /// One endpoint (global rank index).
        src: usize,
        /// The other endpoint (global rank index).
        dst: usize,
    },
    /// One endpoint (used by [`FaultKind::Straggler`]).
    Rank(usize),
    /// One endpoint's NIC (used by [`FaultKind::NicStall`]).
    Nic(usize),
    /// The switch multimem datapath (NVLink SHARP).
    Multimem,
    /// Every endpoint / path.
    All,
}

/// What happens to the target while the event window is active.
#[derive(Debug, Copy, Clone, PartialEq)]
pub enum FaultKind {
    /// The path accepts no new transfers. Transient windows model link
    /// flaps (transfers are delayed to the window end); a window ending at
    /// [`Time::MAX`] is a permanent outage that callers must route around
    /// or surface as a timeout.
    LinkDown,
    /// The path's bandwidth is divided by `factor` (>= 1.0).
    Degrade {
        /// Bandwidth division factor.
        factor: f64,
    },
    /// The NIC delays the start of every transfer by `extra` (e.g. a
    /// firmware hiccup or congested send queue).
    NicStall {
        /// Added start delay.
        extra: Duration,
    },
    /// The rank issues instructions `factor` times slower (a misbehaving
    /// GPU clock or noisy neighbor).
    Straggler {
        /// Issue-time multiplication factor (>= 1.0).
        factor: f64,
    },
    /// The rank's GPU dies: every path touching it reports down from
    /// `start` on, its own processes stop issuing, and peers observe the
    /// death only through timeouts — there is no failure oracle. Always
    /// permanent (`end == Time::MAX`); a dead GPU does not come back.
    RankDown,
}

/// One scheduled fault: `kind` applies to `target` while
/// `start <= now < end`.
#[derive(Debug, Copy, Clone, PartialEq)]
pub struct FaultEvent {
    /// First instant the fault is active.
    pub start: Time,
    /// First instant the fault is no longer active ([`Time::MAX`] for a
    /// permanent fault).
    pub end: Time,
    /// What the fault applies to.
    pub target: FaultTarget,
    /// What happens while active.
    pub kind: FaultKind,
}

impl FaultEvent {
    fn active(&self, now: Time) -> bool {
        self.start <= now && now < self.end
    }

    /// Whether this event never ends.
    pub fn is_permanent(&self) -> bool {
        self.end == Time::MAX
    }

    fn matches_path(&self, src: usize, dst: usize) -> bool {
        match self.target {
            FaultTarget::Link { src: a, dst: b } => {
                (a == src && b == dst) || (a == dst && b == src)
            }
            FaultTarget::All => true,
            _ => false,
        }
    }
}

/// Fault status of a path at one instant, as seen by the hardware model.
#[derive(Debug, Copy, Clone, PartialEq)]
pub struct PathState {
    /// `Some(end)` when a transient down window covers `now`: new
    /// transfers are delayed until `end` (flap semantics).
    pub down_until: Option<Time>,
    /// A permanent down window covers `now`.
    pub down: bool,
    /// Combined bandwidth division factor of active degradations (1.0
    /// when unaffected).
    pub slow: f64,
}

impl PathState {
    const CLEAN: PathState = PathState {
        down_until: None,
        down: false,
        slow: 1.0,
    };
}

/// A deterministic schedule of faults plus the seed that parameterizes
/// every random choice derived from it (generation, retry jitter).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed recorded in benchmark artifacts so a faulted run is
    /// reproducible from its JSON alone.
    pub seed: u64,
    /// Default deadline applied by the engine to every blocking wait of a
    /// non-daemon process: a wait still unsatisfied after this span turns
    /// the run into a typed [`crate::TimeoutError`] instead of a silent
    /// hang. Daemons (CPU proxies parked on an idle FIFO) are exempt.
    pub wait_timeout: Option<Duration>,
    /// The scheduled fault events.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            wait_timeout: None,
            events: Vec::new(),
        }
    }

    /// Sets the default blocking-wait watchdog (builder style).
    pub fn with_wait_timeout(mut self, timeout: Duration) -> FaultPlan {
        self.wait_timeout = Some(timeout);
        self
    }

    /// The default blocking-wait deadline, if any.
    pub fn wait_timeout(&self) -> Option<Duration> {
        self.wait_timeout
    }

    /// Adds an event (builder style).
    pub fn push(mut self, event: FaultEvent) -> FaultPlan {
        self.events.push(event);
        self
    }

    /// Adds a transient link-down (flap) window on the `src`↔`dst` path.
    pub fn link_flap(self, src: usize, dst: usize, start: Time, end: Time) -> FaultPlan {
        self.push(FaultEvent {
            start,
            end,
            target: FaultTarget::Link { src, dst },
            kind: FaultKind::LinkDown,
        })
    }

    /// Takes the `src`↔`dst` path down permanently from `start` on.
    pub fn link_down_forever(self, src: usize, dst: usize, start: Time) -> FaultPlan {
        self.push(FaultEvent {
            start,
            end: Time::MAX,
            target: FaultTarget::Link { src, dst },
            kind: FaultKind::LinkDown,
        })
    }

    /// Divides the `src`↔`dst` path bandwidth by `factor` during the
    /// window.
    pub fn degrade_link(
        self,
        src: usize,
        dst: usize,
        factor: f64,
        start: Time,
        end: Time,
    ) -> FaultPlan {
        self.push(FaultEvent {
            start,
            end,
            target: FaultTarget::Link { src, dst },
            kind: FaultKind::Degrade { factor },
        })
    }

    /// Adds a NIC stall window on `rank`'s NIC.
    pub fn nic_stall(self, rank: usize, extra: Duration, start: Time, end: Time) -> FaultPlan {
        self.push(FaultEvent {
            start,
            end,
            target: FaultTarget::Nic(rank),
            kind: FaultKind::NicStall { extra },
        })
    }

    /// Slows `rank`'s instruction issue by `factor` during the window.
    pub fn straggler(self, rank: usize, factor: f64, start: Time, end: Time) -> FaultPlan {
        self.push(FaultEvent {
            start,
            end,
            target: FaultTarget::Rank(rank),
            kind: FaultKind::Straggler { factor },
        })
    }

    /// Kills `rank`'s GPU permanently at `at`. All paths touching the
    /// rank go down, its processes stop issuing, and peers only learn of
    /// the death through timeouts.
    pub fn rank_down(self, rank: usize, at: Time) -> FaultPlan {
        self.push(FaultEvent {
            start: at,
            end: Time::MAX,
            target: FaultTarget::Rank(rank),
            kind: FaultKind::RankDown,
        })
    }

    /// Kills a whole node at `at`: every rank in `ranks` gets a
    /// [`FaultKind::RankDown`] event. The caller supplies the node's rank
    /// list (the simulator core stays topology-agnostic).
    pub fn node_down(mut self, ranks: &[usize], at: Time) -> FaultPlan {
        for &r in ranks {
            self = self.rank_down(r, at);
        }
        self
    }

    /// Kills `rank`'s NIC permanently from `from` on: every path between
    /// `rank` and the given cross-node `peers` goes down forever, while
    /// the rank itself (and its intra-node links) stays alive — the
    /// rail-level fault class, distinct from a GPU death. The caller
    /// supplies the peer list (the simulator core stays
    /// topology-agnostic).
    pub fn nic_down(mut self, rank: usize, peers: &[usize], from: Time) -> FaultPlan {
        for &p in peers {
            self = self.link_down_forever(rank, p, from);
        }
        self
    }

    /// Takes the switch multimem datapath down permanently from `start`.
    pub fn multimem_down_forever(self, start: Time) -> FaultPlan {
        self.push(FaultEvent {
            start,
            end: Time::MAX,
            target: FaultTarget::Multimem,
            kind: FaultKind::LinkDown,
        })
    }

    /// Generates a plan of 1–3 *transient* faults (flaps, degradations,
    /// stragglers — never permanent outages) over `world` endpoints
    /// within `horizon`, fully determined by `seed`.
    ///
    /// Because every fault is transient, any simulation that is correct
    /// fault-free must still complete with bit-identical data under such
    /// a plan — the property the chaos tests assert.
    pub fn random_transient(seed: u64, world: usize, horizon: Duration) -> FaultPlan {
        assert!(world >= 2, "need at least two endpoints");
        let mut rng = SimRng::new(seed);
        let mut plan = FaultPlan::new(seed);
        let h = horizon.as_ps().max(2);
        let events = 1 + rng.gen_range(0, 3);
        for _ in 0..events {
            let start = Time::from_ps(rng.gen_range(0, h / 2));
            let len = rng.gen_range(h / 20 + 1, h / 2 + 2);
            let end = Time::from_ps(start.as_ps() + len);
            let src = rng.gen_range(0, world as u64) as usize;
            let dst = {
                let mut d = rng.gen_range(0, world as u64 - 1) as usize;
                if d >= src {
                    d += 1;
                }
                d
            };
            let ev = match rng.gen_range(0, 3) {
                0 => FaultEvent {
                    start,
                    end,
                    target: FaultTarget::Link { src, dst },
                    kind: FaultKind::LinkDown,
                },
                1 => FaultEvent {
                    start,
                    end,
                    target: FaultTarget::Link { src, dst },
                    kind: FaultKind::Degrade {
                        factor: 1.5 + rng.next_f64() * 6.5,
                    },
                },
                _ => FaultEvent {
                    start,
                    end,
                    target: FaultTarget::Rank(src),
                    kind: FaultKind::Straggler {
                        factor: 1.25 + rng.next_f64() * 3.0,
                    },
                },
            };
            plan.events.push(ev);
        }
        plan
    }

    /// Fault status of the `src`↔`dst` path at `now` (link-down windows
    /// and bandwidth degradations; see [`PathState`]). A dead endpoint
    /// ([`FaultKind::RankDown`]) makes the path permanently down.
    pub fn path(&self, now: Time, src: usize, dst: usize) -> PathState {
        let mut st = PathState::CLEAN;
        if self.rank_down_at(now, src) || self.rank_down_at(now, dst) {
            st.down = true;
        }
        for ev in &self.events {
            if !ev.active(now) || !ev.matches_path(src, dst) {
                continue;
            }
            match ev.kind {
                FaultKind::LinkDown => {
                    if ev.is_permanent() {
                        st.down = true;
                    } else {
                        st.down_until = Some(st.down_until.map_or(ev.end, |u| u.max(ev.end)));
                    }
                }
                FaultKind::Degrade { factor } => st.slow *= factor,
                _ => {}
            }
        }
        st
    }

    /// Fault status of the multimem datapath at `now`.
    pub fn multimem(&self, now: Time) -> PathState {
        let mut st = PathState::CLEAN;
        for ev in &self.events {
            if !ev.active(now) || !matches!(ev.target, FaultTarget::Multimem | FaultTarget::All) {
                continue;
            }
            match ev.kind {
                FaultKind::LinkDown => {
                    if ev.is_permanent() {
                        st.down = true;
                    } else {
                        st.down_until = Some(st.down_until.map_or(ev.end, |u| u.max(ev.end)));
                    }
                }
                FaultKind::Degrade { factor } => st.slow *= factor,
                _ => {}
            }
        }
        st
    }

    /// Total NIC start-delay active for `rank`'s NIC at `now`.
    pub fn nic_extra(&self, now: Time, rank: usize) -> Duration {
        let mut extra = Duration::ZERO;
        for ev in &self.events {
            if !ev.active(now) {
                continue;
            }
            let hit = matches!(ev.target, FaultTarget::Nic(r) if r == rank)
                || ev.target == FaultTarget::All;
            if let (true, FaultKind::NicStall { extra: e }) = (hit, ev.kind) {
                extra = extra.saturating_add(e);
            }
        }
        extra
    }

    /// Instruction-issue slowdown factor for `rank` at `now` (1.0 when
    /// unaffected).
    pub fn straggler_factor(&self, now: Time, rank: usize) -> f64 {
        let mut f = 1.0;
        for ev in &self.events {
            if !ev.active(now) {
                continue;
            }
            let hit = matches!(ev.target, FaultTarget::Rank(r) if r == rank)
                || ev.target == FaultTarget::All;
            if let (true, FaultKind::Straggler { factor }) = (hit, ev.kind) {
                f *= factor;
            }
        }
        f
    }

    /// Whether the `a`↔`b` path has a permanent down event (at any
    /// start time) — the planning-time query behind degraded-topology
    /// re-planning.
    pub fn link_permanently_down(&self, a: usize, b: usize) -> bool {
        self.events
            .iter()
            .any(|ev| ev.is_permanent() && ev.kind == FaultKind::LinkDown && ev.matches_path(a, b))
    }

    /// Every distinct path with a permanent down event, as `(lo, hi)`
    /// endpoint pairs.
    pub fn permanent_link_downs(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = Vec::new();
        for ev in &self.events {
            if !ev.is_permanent() || ev.kind != FaultKind::LinkDown {
                continue;
            }
            if let FaultTarget::Link { src, dst } = ev.target {
                let pair = (src.min(dst), src.max(dst));
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether `rank`'s GPU is dead at `now`.
    pub fn rank_down_at(&self, now: Time, rank: usize) -> bool {
        self.events.iter().any(|ev| {
            ev.kind == FaultKind::RankDown
                && ev.active(now)
                && matches!(ev.target, FaultTarget::Rank(r) if r == rank)
        })
    }

    /// Every rank with a scheduled [`FaultKind::RankDown`] event active at
    /// `now`, sorted and deduplicated — what a survivor can infer *after*
    /// a timeout, never consulted before one.
    pub fn dead_ranks_at(&self, now: Time) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter(|ev| ev.kind == FaultKind::RankDown && ev.active(now))
            .filter_map(|ev| match ev.target {
                FaultTarget::Rank(r) => Some(r),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every rank scheduled to die at any point in the plan.
    pub fn dead_ranks(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter(|ev| ev.kind == FaultKind::RankDown)
            .filter_map(|ev| match ev.target {
                FaultTarget::Rank(r) => Some(r),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// When `rank`'s GPU dies, if the plan ever kills it.
    pub fn rank_down_time(&self, rank: usize) -> Option<Time> {
        self.events
            .iter()
            .filter(|ev| {
                ev.kind == FaultKind::RankDown
                    && matches!(ev.target, FaultTarget::Rank(r) if r == rank)
            })
            .map(|ev| ev.start)
            .min()
    }

    /// Whether the multimem datapath has a permanent down event.
    pub fn multimem_permanently_down(&self) -> bool {
        self.events.iter().any(|ev| {
            ev.is_permanent()
                && ev.kind == FaultKind::LinkDown
                && matches!(ev.target, FaultTarget::Multimem | FaultTarget::All)
        })
    }

    /// One-line human-readable summary, recorded in benchmark JSON so a
    /// faulted run is reproducible from its artifact.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("seed={}", self.seed);
        if let Some(t) = self.wait_timeout {
            let _ = write!(s, " wait_timeout={t}");
        }
        for ev in &self.events {
            let target = match ev.target {
                FaultTarget::Link { src, dst } => format!("link {src}<->{dst}"),
                FaultTarget::Rank(r) => format!("rank {r}"),
                FaultTarget::Nic(r) => format!("nic {r}"),
                FaultTarget::Multimem => "multimem".to_owned(),
                FaultTarget::All => "all".to_owned(),
            };
            let kind = match ev.kind {
                FaultKind::LinkDown => "down".to_owned(),
                FaultKind::Degrade { factor } => format!("degrade x{factor:.2}"),
                FaultKind::NicStall { extra } => format!("stall +{extra}"),
                FaultKind::Straggler { factor } => format!("straggler x{factor:.2}"),
                FaultKind::RankDown => "dead".to_owned(),
            };
            let window = if ev.is_permanent() {
                format!("[{}..)", ev.start)
            } else {
                format!("[{}..{})", ev.start, ev.end)
            };
            let _ = write!(s, "; {target} {kind} {window}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(9);
        for _ in 0..1000 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
            let r = c.gen_range(10, 20);
            assert!((10..20).contains(&r));
        }
    }

    #[test]
    fn path_state_reflects_windows() {
        let plan = FaultPlan::new(1)
            .link_flap(0, 1, Time::from_ps(100), Time::from_ps(200))
            .degrade_link(0, 1, 4.0, Time::from_ps(150), Time::from_ps(300));
        let before = plan.path(Time::from_ps(50), 0, 1);
        assert_eq!(before, PathState::CLEAN);
        let during = plan.path(Time::from_ps(150), 1, 0); // either direction
        assert_eq!(during.down_until, Some(Time::from_ps(200)));
        assert_eq!(during.slow, 4.0);
        assert!(!during.down);
        let after = plan.path(Time::from_ps(350), 0, 1);
        assert_eq!(after.down_until, None);
        assert_eq!(after.slow, 1.0);
        // Unrelated path untouched.
        assert_eq!(plan.path(Time::from_ps(150), 2, 3), PathState::CLEAN);
    }

    #[test]
    fn permanent_downs_are_reported_for_planning() {
        let plan = FaultPlan::new(2)
            .link_down_forever(3, 1, Time::ZERO)
            .link_flap(4, 5, Time::ZERO, Time::from_ps(10));
        assert!(plan.link_permanently_down(1, 3));
        assert!(!plan.link_permanently_down(4, 5));
        assert_eq!(plan.permanent_link_downs(), vec![(1, 3)]);
        assert!(plan.path(Time::from_ps(5), 3, 1).down);
        assert!(!plan.multimem_permanently_down());
        assert!(FaultPlan::new(0)
            .multimem_down_forever(Time::ZERO)
            .multimem_permanently_down());
    }

    #[test]
    fn straggler_and_nic_queries() {
        let plan = FaultPlan::new(3)
            .straggler(2, 3.0, Time::ZERO, Time::from_ps(100))
            .nic_stall(1, Duration::from_ns(500.0), Time::ZERO, Time::from_ps(100));
        assert_eq!(plan.straggler_factor(Time::from_ps(10), 2), 3.0);
        assert_eq!(plan.straggler_factor(Time::from_ps(10), 0), 1.0);
        assert_eq!(plan.straggler_factor(Time::from_ps(200), 2), 1.0);
        assert_eq!(
            plan.nic_extra(Time::from_ps(10), 1),
            Duration::from_ns(500.0)
        );
        assert_eq!(plan.nic_extra(Time::from_ps(10), 0), Duration::ZERO);
    }

    #[test]
    fn node_down_kills_every_listed_rank() {
        let plan = FaultPlan::new(4).node_down(&[8, 9, 10, 11], Time::from_ps(50));
        for r in 8..12 {
            assert_eq!(plan.rank_down_time(r), Some(Time::from_ps(50)));
            assert!(plan.rank_down_at(Time::from_ps(60), r));
            assert!(!plan.rank_down_at(Time::from_ps(40), r));
        }
        assert_eq!(plan.rank_down_time(0), None);
        let mut dead = plan.dead_ranks_at(Time::from_ps(60));
        dead.sort_unstable();
        assert_eq!(dead, vec![8, 9, 10, 11]);
    }

    #[test]
    fn nic_down_kills_cross_paths_but_not_the_rank() {
        let plan = FaultPlan::new(5).nic_down(3, &[8, 9], Time::from_ps(10));
        assert!(plan.link_permanently_down(3, 8));
        assert!(plan.link_permanently_down(9, 3));
        assert!(!plan.link_permanently_down(3, 2));
        assert!(plan.path(Time::from_ps(20), 3, 8).down);
        assert!(!plan.rank_down_at(Time::from_ps(20), 3));
        assert!(plan.dead_ranks().is_empty());
    }

    #[test]
    fn random_transient_is_deterministic_and_never_permanent() {
        let a = FaultPlan::random_transient(42, 8, Duration::from_us(100.0));
        let b = FaultPlan::random_transient(42, 8, Duration::from_us(100.0));
        assert_eq!(a, b);
        assert!(!a.events.is_empty() && a.events.len() <= 3);
        assert!(a.events.iter().all(|e| !e.is_permanent()));
        let c = FaultPlan::random_transient(43, 8, Duration::from_us(100.0));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn rank_down_kills_every_touching_path() {
        let plan = FaultPlan::new(4).rank_down(2, Time::from_ps(100));
        assert!(!plan.rank_down_at(Time::from_ps(50), 2));
        assert!(plan.rank_down_at(Time::from_ps(100), 2));
        assert!(plan.path(Time::from_ps(150), 2, 5).down);
        assert!(plan.path(Time::from_ps(150), 0, 2).down);
        assert!(!plan.path(Time::from_ps(150), 0, 1).down);
        assert!(!plan.path(Time::from_ps(50), 0, 2).down);
        assert_eq!(plan.dead_ranks(), vec![2]);
        assert_eq!(plan.dead_ranks_at(Time::from_ps(50)), Vec::<usize>::new());
        assert_eq!(plan.dead_ranks_at(Time::from_ps(100)), vec![2]);
        assert_eq!(plan.rank_down_time(2), Some(Time::from_ps(100)));
        assert_eq!(plan.rank_down_time(0), None);
        assert!(plan.summary().contains("rank 2 dead"), "{}", plan.summary());
        // A dead rank is not a dead *link*: link-level planning queries
        // stay clean so survivor-only groups re-plan normally.
        assert!(!plan.link_permanently_down(0, 2));
    }

    #[test]
    fn summary_names_seed_and_events() {
        let plan = FaultPlan::new(99)
            .with_wait_timeout(Duration::from_us(10.0))
            .link_down_forever(0, 1, Time::ZERO);
        let s = plan.summary();
        assert!(s.contains("seed=99"), "{s}");
        assert!(s.contains("link 0<->1 down"), "{s}");
        assert!(s.contains("wait_timeout"), "{s}");
    }
}
