//! An indexed calendar queue: the engine's event queue.
//!
//! A discrete-event simulator's queue workload is extremely structured:
//! almost every push is at or just after the current instant, pops are
//! globally nondecreasing in `(time, seq)`, and bursts of events share
//! one timestamp (simultaneous wakes after a barrier, zero-length
//! yields). A comparator-based binary heap pays `O(log n)` pointer-heavy
//! work for every one of those operations; a calendar queue pays
//! amortized `O(1)`.
//!
//! Layout:
//!
//! - a **service FIFO** holding every pending event with
//!   `time <= fifo_time` (the current service horizon), kept sorted by
//!   `(time, seq)`. Since `seq` is globally monotonic, events scheduled
//!   *for the current instant* — the dominant case — append to the tail
//!   in O(1) and pop from the head in O(1), no comparator at all.
//! - a **calendar** of `2^k` unsorted buckets for events beyond the
//!   horizon. An event at time `t` lives in bucket
//!   `(t >> width_shift) & (buckets - 1)`; a bucket therefore holds one
//!   "day" of each wheel "year". When the FIFO drains, the wheel is
//!   scanned day-by-day from the horizon; the first day with events
//!   yields the minimum timestamp `T`, and *every* event at exactly `T`
//!   is moved into the FIFO in one pass (they all share a bucket, since
//!   bucket index is a pure function of time).
//!
//! The bucket count and width adapt to the population (doubling when
//! buckets get crowded, re-deriving the width from the mean inter-event
//! gap), purely as a function of queue content — scheduling order, and
//! therefore simulation output, is bit-deterministic and identical to a
//! totally-ordered `(time, seq)` heap. Capacity only ratchets up: a
//! workload that repeatedly fills and drains the queue (one collective
//! launch after another) pays its grow rebuilds once, on the first
//! ramp-up, and never again — an eager shrink would tear the wheel down
//! at every drain tail just to rebuild it at the next launch. The cost
//! is a longer empty-day scan while the population is small, which is
//! cheap (an empty `Vec` check per day) and amortized across the events
//! that refill the wheel.

use std::collections::VecDeque;

/// One queued entry: a totally ordered `(time, seq)` key plus payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry<T> {
    /// Event time in raw picoseconds.
    pub time: u64,
    /// Global insertion sequence (unique; the tie-breaker).
    pub seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

const MIN_BUCKETS: usize = 64;
/// Bucket width bounds: 2^6 ps (64 ps) .. 2^42 ps (~4.4 s of virtual
/// time per day). Clamping keeps day indices meaningful for any event
/// the simulator can schedule.
const MIN_SHIFT: u32 = 6;
const MAX_SHIFT: u32 = 42;

#[derive(Debug)]
pub(crate) struct CalendarQueue<T> {
    /// Events with `time <= fifo_time`, sorted ascending by `(time, seq)`.
    fifo: VecDeque<Entry<T>>,
    /// The service horizon: every event at or before it is in the FIFO.
    fifo_time: u64,
    /// Unsorted future buckets (`time > fifo_time`).
    buckets: Vec<Vec<Entry<T>>>,
    /// `log2` of the bucket width in picoseconds.
    width_shift: u32,
    /// Events currently stored in `buckets`.
    in_buckets: usize,
}

impl<T: Copy> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue {
            fifo: VecDeque::new(),
            fifo_time: 0,
            buckets: vec![Vec::new(); MIN_BUCKETS],
            width_shift: 12, // ~4 ns: the scale of back-to-back GPU events
            in_buckets: 0,
        }
    }
}

impl<T: Copy> CalendarQueue<T> {
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.fifo.len() + self.in_buckets
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn clear(&mut self) {
        self.fifo.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.in_buckets = 0;
    }

    fn bucket_of(&self, time: u64) -> usize {
        ((time >> self.width_shift) as usize) & (self.buckets.len() - 1)
    }

    pub(crate) fn push(&mut self, e: Entry<T>) {
        if e.time <= self.fifo_time {
            // At (or, after a clamp, marginally behind) the service
            // horizon. Monotonic `seq` makes plain append correct except
            // in the rare horizon-lag case, which falls back to a sorted
            // insert.
            match self.fifo.back() {
                Some(last) if last.key() > e.key() => {
                    let pos = self.fifo.partition_point(|x| x.key() < e.key());
                    self.fifo.insert(pos, e);
                }
                _ => self.fifo.push_back(e),
            }
            return;
        }
        let b = self.bucket_of(e.time);
        self.buckets[b].push(e);
        self.in_buckets += 1;
        if self.in_buckets > self.buckets.len() * 2 {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Entry<T>> {
        if let Some(e) = self.fifo.pop_front() {
            return Some(e);
        }
        if self.in_buckets == 0 {
            return None;
        }
        self.advance_to_next_day();
        self.fifo.pop_front()
    }

    /// Finds the earliest pending timestamp `T` in the calendar and moves
    /// every event at exactly `T` into the FIFO, ordered by `seq`.
    fn advance_to_next_day(&mut self) {
        debug_assert!(self.in_buckets > 0 && self.fifo.is_empty());
        let nb = self.buckets.len() as u64;
        // Start at the horizon's own day: it may still hold events later
        // than `fifo_time` (every bucketed event is strictly beyond the
        // horizon, so nothing already served can be found again).
        let start_day = self.fifo_time >> self.width_shift;
        let mut min: Option<(u64, u64)> = None; // (time, seq)
        let mut min_bucket = 0usize;
        // One wheel revolution starting at the horizon: the first day
        // with events is the global minimum *if* it falls within this
        // year for its bucket.
        for step in 0..nb {
            let day = start_day + step;
            let b = (day as usize) & (self.buckets.len() - 1);
            let day_lo = day << self.width_shift;
            let day_hi = day_lo + (1 << self.width_shift); // exclusive
            for e in &self.buckets[b] {
                if e.time >= day_lo && e.time < day_hi && min.is_none_or(|m| e.key() < m) {
                    min = Some(e.key());
                    min_bucket = b;
                }
            }
            if min.is_some() {
                break;
            }
        }
        if min.is_none() {
            // Nothing within one revolution: the population is sparse and
            // far away (long timeouts). Direct scan for the global min.
            for (b, bucket) in self.buckets.iter().enumerate() {
                for e in bucket {
                    if min.is_none_or(|m| e.key() < m) {
                        min = Some(e.key());
                        min_bucket = b;
                    }
                }
            }
        }
        let (min_time, _) = min.expect("in_buckets > 0 but no event found");
        // Extract every event at exactly `min_time` (all share the bucket)
        // with an order-preserving compaction. Within a bucket, entries at
        // equal times are always in `seq` order: pushes append with a
        // globally monotonic `seq`, rebuilds keep the relative order of
        // same-bucket entries, and this compaction keeps the order of
        // what remains — so the extracted batch needs no sort.
        let bucket = &mut self.buckets[min_bucket];
        let mut kept = 0;
        for i in 0..bucket.len() {
            let e = bucket[i];
            if e.time == min_time {
                self.fifo.push_back(e);
            } else {
                bucket[kept] = e;
                kept += 1;
            }
        }
        bucket.truncate(kept);
        self.in_buckets -= self.fifo.len();
        debug_assert!(
            self.fifo
                .iter()
                .zip(self.fifo.iter().skip(1))
                .all(|(a, b)| a.seq < b.seq),
            "same-day harvest must arrive seq-sorted"
        );
        self.fifo_time = min_time;
    }

    /// Re-buckets the calendar at a new size, re-deriving the bucket
    /// width from the live population's spread so a typical day holds
    /// O(1) events. Pure function of queue content: deterministic.
    fn rebuild(&mut self, new_len: usize) {
        let new_len = new_len.max(MIN_BUCKETS).next_power_of_two();
        let mut all: Vec<Entry<T>> = Vec::with_capacity(self.in_buckets);
        for b in &mut self.buckets {
            all.append(b);
        }
        if !all.is_empty() {
            let lo = self.fifo_time;
            let hi = all.iter().map(|e| e.time).max().unwrap_or(lo);
            let span = hi.saturating_sub(lo).max(1);
            let target = (span / (all.len() as u64 + 1)).max(1);
            // Width = next power of two at or above the mean gap, so that
            // on average about one event lands per day.
            self.width_shift = (64 - target.leading_zeros()).clamp(MIN_SHIFT, MAX_SHIFT);
        }
        self.buckets.resize(new_len, Vec::new());
        if self.buckets.len() > new_len {
            self.buckets.truncate(new_len);
        }
        for e in &all {
            let b = ((e.time >> self.width_shift) as usize) & (new_len - 1);
            self.buckets[b].push(*e);
        }
        self.in_buckets = all.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for model-based testing (no external RNG).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::default();
        for (seq, &time) in [50_u64, 10, 10, 9_000_000, 0, 50].iter().enumerate() {
            q.push(Entry {
                time,
                seq: seq as u64,
                payload: (),
            });
        }
        let keys: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop()).map(|e| e.key()).collect();
        assert_eq!(
            keys,
            vec![(0, 4), (10, 1), (10, 2), (50, 0), (50, 5), (9_000_000, 3)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_pushes_during_service_stay_fifo() {
        let mut q = CalendarQueue::default();
        q.push(Entry {
            time: 100,
            seq: 0,
            payload: 'a',
        });
        assert_eq!(q.pop().unwrap().payload, 'a');
        // Events scheduled for the instant being serviced (zero-yields,
        // immediate wakes) must come out in push order.
        for (seq, p) in [(1, 'b'), (2, 'c'), (3, 'd')] {
            q.push(Entry {
                time: 100,
                seq,
                payload: p,
            });
        }
        q.push(Entry {
            time: 101,
            seq: 4,
            payload: 'e',
        });
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!['b', 'c', 'd', 'e']);
    }

    #[test]
    fn clamped_push_behind_horizon_is_served_next() {
        let mut q = CalendarQueue::default();
        q.push(Entry {
            time: 1000,
            seq: 0,
            payload: 0,
        });
        assert!(q.pop().is_some()); // horizon now 1000
        q.push(Entry {
            time: 2000,
            seq: 1,
            payload: 1,
        });
        q.push(Entry {
            time: 999, // behind the horizon (engine clamp edge case)
            seq: 2,
            payload: 2,
        });
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 1);
    }

    #[test]
    fn matches_reference_heap_under_random_workload() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut rng = Rng(0x9E3779B97F4A7C15);
        let mut q = CalendarQueue::default();
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for round in 0..50_000u64 {
            let r = rng.next();
            if r % 3 != 0 || model.is_empty() {
                // Push at `now + gap`, with gap spanning 6 orders of
                // magnitude (same-instant .. multi-ms timeouts).
                let magnitude = 10u64.pow((r / 7 % 7) as u32);
                let gap = (r / 11) % magnitude;
                let t = now + gap;
                q.push(Entry {
                    time: t,
                    seq,
                    payload: round,
                });
                model.push(Reverse((t, seq)));
                seq += 1;
            } else {
                let got = q.pop().expect("model nonempty");
                let Reverse(want) = model.pop().unwrap();
                assert_eq!(got.key(), want, "divergence at round {round}");
                now = got.time;
            }
        }
        while let Some(got) = q.pop() {
            let Reverse(want) = model.pop().unwrap();
            assert_eq!(got.key(), want);
        }
        assert!(model.is_empty());
    }

    #[test]
    fn survives_burst_resize_and_sparse_far_future() {
        let mut q = CalendarQueue::default();
        // Burst: thousands of events in a tight window (forces growth).
        for seq in 0..5000u64 {
            q.push(Entry {
                time: 1_000 + seq % 97,
                seq,
                payload: (),
            });
        }
        // Plus a handful of far-future timeouts (forces the revolution
        // fallback and later a shrink).
        for seq in 5000..5004u64 {
            q.push(Entry {
                time: 40_000_000_000 + seq, // 40 ms away
                seq,
                payload: (),
            });
        }
        let mut last = (0u64, 0u64);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!(e.key() >= last, "order violated: {:?} < {last:?}", e.key());
            last = e.key();
            n += 1;
        }
        assert_eq!(n, 5004);
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = CalendarQueue::default();
        for seq in 0..100 {
            q.push(Entry {
                time: seq * 1000,
                seq,
                payload: (),
            });
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
