//! The discrete-event engine: event queue, cells, resources, scheduling.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;

use crate::depgraph::{DepGraph, ProfState};
use crate::fault::FaultPlan;
use crate::metrics::Metrics;
use crate::process::{Process, Step};
use crate::time::{Duration, Time};
use crate::trace::{Trace, TraceEventKind};

/// Identifies a process spawned on an [`Engine`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(usize);

/// Identifies a monotonic notification cell.
///
/// Cells model every cross-process synchronization primitive in the
/// simulation: GPU semaphores, proxy FIFO head/tail counters, barrier
/// arrival counts, and LL-protocol flag readiness. A cell holds a `u64`
/// that only ever increases; processes block until a cell reaches a
/// threshold and are woken exactly when it does.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(usize);

/// Identifies a serializing resource (an interconnect link port, a DMA
/// engine, a NIC).
///
/// A resource is busy until some instant; acquiring it for a span returns
/// the completion time and pushes the busy horizon forward. Concurrent
/// transfers over the same link thereby serialize, which is how the
/// simulation models bandwidth sharing.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Wake(ProcId),
    /// A cell update. The `u32` is the index of the issuing step's
    /// [`crate::depgraph::IssueRec`] when profiling is enabled
    /// (`u32::MAX` otherwise), so a wake caused by this update can be
    /// traced back to its issuer.
    CellAdd(CellId, u64, u32),
    /// Deadline check for a blocking wait. The `u64` is the blocking
    /// epoch of the process when the check was scheduled; a mismatch
    /// means the wait completed and the check is stale.
    TimeoutCheck(ProcId, u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Has a pending wake event in the queue.
    Scheduled,
    /// Waiting for a cell to reach a threshold.
    Blocked { cell: CellId, at_least: u64 },
    /// Finished; never stepped again.
    Done,
}

struct Slot<W> {
    proc: Option<Box<dyn Process<W>>>,
    state: ProcState,
    label: String,
    /// The label interned at spawn time (index into `Core::labels`), so
    /// trace recording never allocates per step.
    label_id: u32,
    /// Daemons (e.g. CPU proxy threads) may remain blocked when the queue
    /// drains without counting as deadlock.
    daemon: bool,
    /// Incremented every time the process blocks; lets a pending
    /// [`EventKind::TimeoutCheck`] detect that the wait it guarded has
    /// already completed.
    epoch: u64,
    /// When the current (or most recent) blocking wait began.
    blocked_at: Time,
}

/// Engine internals shared with processes through [`Ctx`].
struct Core {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<Ev>>,
    cells: Vec<u64>,
    /// Per-cell list of `(threshold, process)` waiters.
    waiters: Vec<Vec<(u64, ProcId)>>,
    /// Per-resource busy-until horizon.
    resources: Vec<Time>,
    events_processed: u64,
    /// Counters and per-resource accounting.
    metrics: Metrics,
    /// Interned label table shared by the trace and the span stacks.
    labels: Vec<String>,
    label_index: HashMap<String, u32>,
    /// Per-process stack of open explicit spans (interned label ids).
    span_stacks: Vec<Vec<u32>>,
    /// Recording sink, when tracing is enabled.
    trace: Option<Trace>,
    /// Dependency-graph recorder, when profiling is enabled.
    prof: Option<ProfState>,
    /// Deterministic fault schedule, when injection is enabled.
    faults: Option<FaultPlan>,
}

impl Core {
    fn push(&mut self, time: Time, kind: EventKind) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Ev { time, seq, kind }));
    }

    /// Interns a label, returning its stable index. Allocates only the
    /// first time a distinct label is seen.
    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.label_index.get(label) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.labels.push(label.to_owned());
        self.label_index.insert(label.to_owned(), id);
        id
    }

    fn record(&mut self, at: Time, proc_index: usize, label: u32, kind: TraceEventKind) {
        if let Some(trace) = &mut self.trace {
            trace.push(at, proc_index, label, kind);
        }
    }
}

/// A process's view of the engine during a step.
///
/// Grants access to the simulation world, the virtual clock, cells, and
/// resources. See the crate-level docs for an end-to-end example.
pub struct Ctx<'a, W> {
    core: &'a mut Core,
    /// The domain state (GPU memories, topology, cost model, ...).
    pub world: &'a mut W,
    spawned: &'a mut Vec<(Box<dyn Process<W>>, String, bool)>,
    /// The process currently being stepped.
    pid: ProcId,
}

impl<W> Ctx<'_, W> {
    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// Current value of a cell.
    pub fn cell(&self, cell: CellId) -> u64 {
        self.core.cells[cell.0]
    }

    /// Adds `delta` to a cell immediately, waking satisfied waiters at the
    /// current instant.
    pub fn cell_add(&mut self, cell: CellId, delta: u64) {
        let at = self.core.now;
        self.cell_add_at(cell, delta, at);
    }

    /// Adds `delta` to a cell at a future instant (e.g. when a signal lands
    /// on the peer GPU after its propagation latency).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `at` is in the past.
    pub fn cell_add_at(&mut self, cell: CellId, delta: u64, at: Time) {
        let issue = match &mut self.core.prof {
            Some(p) => p.on_issue(self.pid.0, self.core.now, at),
            None => u32::MAX,
        };
        self.core.push(at, EventKind::CellAdd(cell, delta, issue));
    }

    /// Allocates a fresh cell with value zero.
    pub fn alloc_cell(&mut self) -> CellId {
        self.core.cells.push(0);
        self.core.waiters.push(Vec::new());
        CellId(self.core.cells.len() - 1)
    }

    /// Allocates a fresh resource that is free immediately.
    pub fn alloc_resource(&mut self) -> ResourceId {
        self.core.resources.push(Time::ZERO);
        self.core.metrics.add_resource();
        ResourceId(self.core.resources.len() - 1)
    }

    /// Occupies `resource` for `busy` starting no earlier than now, and
    /// returns the completion instant.
    pub fn acquire(&mut self, resource: ResourceId, busy: Duration) -> Time {
        self.acquire_after(resource, self.core.now, busy)
    }

    /// Occupies `resource` for `busy` starting no earlier than `earliest`
    /// (and no earlier than the resource becomes free), returning the
    /// completion instant.
    ///
    /// The time spent queued behind earlier acquisitions (actual start
    /// minus `earliest`) is accumulated as the resource's queueing delay.
    pub fn acquire_after(&mut self, resource: ResourceId, earliest: Time, busy: Duration) -> Time {
        let free_at = &mut self.core.resources[resource.0];
        let start = (*free_at).max(earliest);
        let done = start + busy;
        *free_at = done;
        self.core
            .metrics
            .on_acquire(resource, busy, start - earliest);
        if let Some(p) = &mut self.core.prof {
            p.on_acquire(self.pid.0, resource.0, earliest, start, done);
        }
        done
    }

    /// The instant a resource becomes free (without occupying it).
    pub fn resource_free_at(&self, resource: ResourceId) -> Time {
        self.core.resources[resource.0]
    }

    /// Total time this resource has been occupied so far (for
    /// utilization reporting).
    pub fn resource_busy(&self, resource: ResourceId) -> Duration {
        self.core.metrics.busy(resource)
    }

    /// Attaches a diagnostic label to a resource (shown in metrics
    /// reports).
    pub fn label_resource(&mut self, resource: ResourceId, label: &str) {
        self.core.metrics.set_label(resource, label);
    }

    /// Meters `bytes` as carried by `resource` (per-link byte accounting).
    pub fn meter_bytes(&mut self, resource: ResourceId, bytes: u64) {
        self.core.metrics.add_bytes(resource, bytes);
    }

    /// Adds `delta` to the named metrics counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.core.metrics.inc(name, delta);
    }

    /// Read access to the metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// The active fault plan, if injection is enabled for this run.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.core.faults.as_ref()
    }

    /// Opens a named span for the current process. The span appears in
    /// the trace (when tracing is enabled) and on the process's span
    /// stack, which is reported by [`DeadlockError`] if the process is
    /// still blocked when the simulation stalls.
    pub fn span_begin(&mut self, label: &str) {
        let id = self.core.intern(label);
        self.core.span_stacks[self.pid.0].push(id);
        self.core
            .record(self.core.now, self.pid.0, id, TraceEventKind::SpanBegin);
    }

    /// Whether tracing is enabled for this engine. Guard any per-step
    /// label formatting for [`Ctx::trace_counter`] behind this check to
    /// keep untraced runs allocation-free.
    pub fn tracing(&self) -> bool {
        self.core.trace.is_some()
    }

    /// Records a named counter sample into the trace (a Chrome `C` event:
    /// a step-function counter track in Perfetto). No-op when tracing is
    /// disabled.
    pub fn trace_counter(&mut self, name: &str, value: u64) {
        if self.core.trace.is_some() {
            let id = self.core.intern(name);
            self.core.record(
                self.core.now,
                self.pid.0,
                id,
                TraceEventKind::Counter(value),
            );
        }
    }

    /// Closes the current process's innermost open span.
    pub fn span_end(&mut self) {
        if let Some(id) = self.core.span_stacks[self.pid.0].pop() {
            self.core
                .record(self.core.now, self.pid.0, id, TraceEventKind::SpanEnd);
        } else {
            debug_assert!(false, "span_end without a matching span_begin");
        }
    }

    /// Spawns a new process that will first run at the current instant.
    pub fn spawn<P: Process<W> + 'static>(&mut self, proc: P) {
        let label = proc.label();
        self.spawned.push((Box::new(proc), label, false));
    }

    /// Spawns a daemon process (see [`Engine::spawn_daemon`]).
    pub fn spawn_daemon<P: Process<W> + 'static>(&mut self, proc: P) {
        let label = proc.label();
        self.spawned.push((Box::new(proc), label, true));
    }
}

/// A blocked process recorded in a [`DeadlockError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedProcess {
    /// The blocked process.
    pub proc: ProcId,
    /// Its diagnostic label.
    pub label: String,
    /// The cell it is waiting on.
    pub cell: CellId,
    /// The threshold it needs.
    pub needed: u64,
    /// The cell's actual value when the simulation stalled.
    pub actual: u64,
    /// The process's open [`Ctx::span_begin`] spans, outermost first —
    /// e.g. `["allreduce", "wait.mem_sem"]` — showing *what* it was doing
    /// when it stalled, not just which cell it wanted.
    pub span_stack: Vec<String>,
}

/// The simulation stalled: the event queue drained while non-daemon
/// processes were still blocked on cells that can no longer change.
///
/// This almost always indicates a bug in a communication algorithm — a
/// `wait` without a matching `signal` — exactly the class of bug the
/// paper's synchronization discussion (§2.2.2) is about.
///
/// Daemon processes (CPU proxies parked on an idle FIFO) are *not* a
/// deadlock by themselves: when only daemons remain blocked at
/// quiescence, [`Engine::run`] returns `Ok`. When a real deadlock is
/// reported, any parked daemons are listed separately in
/// [`DeadlockError::daemons`] so a proxy retrying through a fault window
/// is never misread as the culprit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockError {
    /// Every non-daemon process still blocked when the queue drained.
    pub blocked: Vec<BlockedProcess>,
    /// Daemon processes that were also parked at the stall — reported
    /// for context, but not themselves evidence of deadlock.
    pub daemons: Vec<BlockedProcess>,
    /// The virtual time at which the simulation stalled.
    pub at: Time,
}

impl fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulation deadlocked at {} with {} blocked process(es):",
            self.at,
            self.blocked.len()
        )?;
        for b in &self.blocked {
            write!(
                f,
                "  {:?} [{}] waiting for {:?} >= {} (actual {})",
                b.proc, b.label, b.cell, b.needed, b.actual
            )?;
            if b.span_stack.is_empty() {
                writeln!(f)?;
            } else {
                writeln!(f, " in {}", b.span_stack.join(" > "))?;
            }
        }
        if !self.daemons.is_empty() {
            writeln!(
                f,
                "  note: {} daemon process(es) also parked (idle daemons are not a deadlock):",
                self.daemons.len()
            )?;
            for b in &self.daemons {
                writeln!(
                    f,
                    "    {:?} [{}] waiting for {:?} >= {} (actual {})",
                    b.proc, b.label, b.cell, b.needed, b.actual
                )?;
            }
        }
        Ok(())
    }
}

impl Error for DeadlockError {}

/// A blocking wait exceeded its virtual-time deadline.
///
/// Produced either by an explicit [`Step::WaitCellTimeout`] or by the
/// plan-wide watchdog ([`FaultPlan::wait_timeout`]). Unlike
/// [`DeadlockError`], which requires the whole simulation to quiesce,
/// a timeout fires while other processes may still be making progress —
/// it is how a permanent link-down surfaces as a typed error instead of
/// a silent hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeoutError {
    /// The process whose wait timed out.
    pub proc: ProcId,
    /// Its diagnostic label.
    pub label: String,
    /// The cell it was waiting on.
    pub cell: CellId,
    /// The threshold it needed.
    pub needed: u64,
    /// The cell's actual value at the deadline.
    pub actual: u64,
    /// The virtual time at which the deadline expired.
    pub at: Time,
    /// How long the process had been blocked.
    pub waited: Duration,
    /// The process's open spans, outermost first — names *what* was being
    /// waited for (e.g. `["allreduce", "wait.port_flush"]`).
    pub span_stack: Vec<String>,
}

impl fmt::Display for TimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wait timed out at {} after {}: {:?} [{}] waiting for {:?} >= {} (actual {})",
            self.at, self.waited, self.proc, self.label, self.cell, self.needed, self.actual
        )?;
        if !self.span_stack.is_empty() {
            write!(f, " in {}", self.span_stack.join(" > "))?;
        }
        Ok(())
    }
}

impl Error for TimeoutError {}

/// Why [`Engine::run`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The queue drained with non-daemon processes still blocked.
    Deadlock(DeadlockError),
    /// A blocking wait exceeded its deadline.
    Timeout(TimeoutError),
}

impl SimError {
    /// The inner deadlock, if that is what happened.
    pub fn as_deadlock(&self) -> Option<&DeadlockError> {
        match self {
            SimError::Deadlock(e) => Some(e),
            SimError::Timeout(_) => None,
        }
    }

    /// The inner timeout, if that is what happened.
    pub fn as_timeout(&self) -> Option<&TimeoutError> {
        match self {
            SimError::Timeout(e) => Some(e),
            SimError::Deadlock(_) => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(e) => e.fmt(f),
            SimError::Timeout(e) => e.fmt(f),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Deadlock(e) => Some(e),
            SimError::Timeout(e) => Some(e),
        }
    }
}

impl From<DeadlockError> for SimError {
    fn from(e: DeadlockError) -> SimError {
        SimError::Deadlock(e)
    }
}

impl From<TimeoutError> for SimError {
    fn from(e: TimeoutError) -> SimError {
        SimError::Timeout(e)
    }
}

/// The deterministic discrete-event engine.
///
/// Owns the virtual clock, the event queue, all processes, cells, and
/// resources, plus the domain world `W`. Construct with [`Engine::new`],
/// add processes with [`Engine::spawn`], then call [`Engine::run`].
///
/// Determinism: events are ordered by `(time, insertion sequence)`; no
/// wall-clock time or hash-iteration order influences scheduling, so a
/// given program always produces identical timings and world state.
pub struct Engine<W> {
    core: Core,
    world: W,
    processes: Vec<Slot<W>>,
}

impl<W: fmt::Debug> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.core.now)
            .field("processes", &self.processes.len())
            .field("cells", &self.core.cells.len())
            .field("resources", &self.core.resources.len())
            .field("events_processed", &self.core.events_processed)
            .finish_non_exhaustive()
    }
}

impl<W> Engine<W> {
    /// Creates an engine at time zero wrapping the given world.
    pub fn new(world: W) -> Engine<W> {
        Engine {
            core: Core {
                now: Time::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                cells: Vec::new(),
                waiters: Vec::new(),
                resources: Vec::new(),
                events_processed: 0,
                metrics: Metrics::default(),
                labels: Vec::new(),
                label_index: HashMap::new(),
                span_stacks: Vec::new(),
                trace: None,
                prof: None,
                faults: None,
            },
            world,
            processes: Vec::new(),
        }
    }

    /// Starts recording an execution [`Trace`] (paired begin/end events
    /// per process step plus explicit spans). Call [`Engine::take_trace`]
    /// to retrieve it.
    pub fn enable_tracing(&mut self) {
        if self.core.trace.is_none() {
            self.core.trace = Some(Trace::default());
            // Spans opened before tracing began get a synthetic begin, so
            // their eventual ends (possibly recorded by an abort) balance.
            self.reopen_live_spans();
        }
    }

    /// Takes the recorded trace (if tracing was enabled), leaving a fresh
    /// empty trace in place so recording continues. The returned trace
    /// carries a snapshot of the label table; interned ids remain valid
    /// across takes because the table is append-only.
    ///
    /// Spans still open at take time (e.g. a daemon parked inside a wait
    /// span) are re-opened in the fresh trace with a synthetic
    /// `SpanBegin` at the current instant, so every trace segment is
    /// self-balanced: a later teardown's `SpanEnd` never lands in a
    /// segment missing its begin.
    pub fn take_trace(&mut self) -> Option<Trace> {
        let taken = self.core.trace.as_mut().map(std::mem::take).map(|mut t| {
            t.labels = self.core.labels.clone();
            t
        });
        if taken.is_some() {
            self.reopen_live_spans();
        }
        taken
    }

    /// Records a synthetic `SpanBegin` for every span currently open on a
    /// live process, anchoring them in the current (fresh) trace segment.
    fn reopen_live_spans(&mut self) {
        let now = self.core.now;
        for (i, stack) in self.core.span_stacks.iter().enumerate() {
            if self.processes[i].state == ProcState::Done {
                continue;
            }
            for &id in stack {
                if let Some(trace) = &mut self.core.trace {
                    trace.push(now, i, id, TraceEventKind::SpanBegin);
                }
            }
        }
    }

    /// Starts recording the execution dependency graph (one node per
    /// process step, with wake causes, spawn edges, and resource grants).
    /// Call [`Engine::take_dep_graph`] to retrieve it. Enable before
    /// spawning the work to profile: steps executed earlier are not
    /// recorded.
    pub fn enable_profiling(&mut self) {
        if self.core.prof.is_none() {
            let mut p = ProfState::default();
            for _ in 0..self.processes.len() {
                p.on_spawn(None);
            }
            self.core.prof = Some(p);
        }
    }

    /// Takes the recorded dependency graph (if profiling was enabled),
    /// leaving a fresh recorder in place so recording continues. The
    /// graph carries snapshots of the process-label table and the
    /// resource labels.
    pub fn take_dep_graph(&mut self) -> Option<DepGraph> {
        let prof = self.core.prof.as_mut()?;
        let mut fresh = ProfState::default();
        for _ in 0..self.processes.len() {
            fresh.on_spawn(None);
        }
        let old = std::mem::replace(prof, fresh);
        Some(DepGraph {
            nodes: old.nodes,
            issues: old.issues,
            labels: self.core.labels.clone(),
            resource_labels: self
                .core
                .metrics
                .resources()
                .into_iter()
                .map(|s| s.label)
                .collect(),
        })
    }

    /// Read access to the metrics registry (counters + per-resource
    /// accounting).
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Attaches a deterministic fault schedule. Install the plan before
    /// building communicators: setup code derives retry-jitter seeds from
    /// it, and collective planning consults its permanent outages.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.core.faults = Some(plan);
    }

    /// Removes the fault schedule, if any, and returns it.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.core.faults.take()
    }

    /// The active fault plan, if injection is enabled.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.core.faults.as_ref()
    }

    /// Tears down all outstanding work after a failed run: drops every
    /// unfinished process, clears the event queue and waiter lists, and
    /// *closes* every open span at the abort instant so a post-mortem
    /// trace is well-formed Chrome JSON. Resource busy horizons are
    /// clamped to now and the cancelled overhang is subtracted from
    /// [`Metrics`], so an aborted run's utilization reflects only work
    /// that actually happened. The clock, cells, and metrics are kept
    /// for post-mortem inspection, and the engine accepts new spawns
    /// again — this is the clean abort path after a
    /// [`SimError::Timeout`].
    pub fn abort(&mut self) {
        self.core.queue.clear();
        for w in &mut self.core.waiters {
            w.clear();
        }
        let now = self.core.now;
        for (i, slot) in self.processes.iter_mut().enumerate() {
            if slot.state != ProcState::Done {
                slot.state = ProcState::Done;
                slot.proc = None;
            }
            // Close open spans innermost-first so the trace balances.
            while let Some(id) = self.core.span_stacks[i].pop() {
                self.core.record(now, i, id, TraceEventKind::SpanEnd);
            }
        }
        for r in 0..self.core.resources.len() {
            let horizon = self.core.resources[r];
            if horizon > now {
                self.core.metrics.cancel_busy(ResourceId(r), horizon - now);
                self.core.resources[r] = now;
            }
        }
    }

    /// Exclusive access to the metrics registry (e.g. for counters
    /// incremented outside any process step).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Adds `delta` to the named metrics counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.core.metrics.inc(name, delta);
    }

    /// Attaches a diagnostic label to a resource.
    pub fn label_resource(&mut self, resource: ResourceId, label: &str) {
        self.core.metrics.set_label(resource, label);
    }

    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// Total events processed so far (a proxy for simulation effort).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Allocates a fresh cell with value zero.
    pub fn alloc_cell(&mut self) -> CellId {
        self.core.cells.push(0);
        self.core.waiters.push(Vec::new());
        CellId(self.core.cells.len() - 1)
    }

    /// Current value of a cell.
    pub fn cell(&self, cell: CellId) -> u64 {
        self.core.cells[cell.0]
    }

    /// Allocates a fresh resource that is free immediately.
    pub fn alloc_resource(&mut self) -> ResourceId {
        self.core.resources.push(Time::ZERO);
        self.core.metrics.add_resource();
        ResourceId(self.core.resources.len() - 1)
    }

    /// Total time a resource has been occupied (for utilization reports).
    pub fn resource_busy(&self, resource: ResourceId) -> Duration {
        self.core.metrics.busy(resource)
    }

    /// Spawns a process; it will first run at the current instant.
    pub fn spawn<P: Process<W> + 'static>(&mut self, proc: P) -> ProcId {
        let label = proc.label();
        self.spawn_boxed(Box::new(proc), label, false, None)
    }

    /// Spawns a *daemon* process: a long-lived server (such as a CPU proxy
    /// thread draining a port-channel FIFO) that is allowed to remain
    /// blocked when the rest of the simulation quiesces. [`Engine::run`]
    /// returns `Ok` with daemons still blocked; they wake again if a later
    /// batch of processes satisfies their condition.
    pub fn spawn_daemon<P: Process<W> + 'static>(&mut self, proc: P) -> ProcId {
        let label = proc.label();
        self.spawn_boxed(Box::new(proc), label, true, None)
    }

    fn spawn_boxed(
        &mut self,
        proc: Box<dyn Process<W>>,
        label: String,
        daemon: bool,
        origin: Option<u32>,
    ) -> ProcId {
        let id = ProcId(self.processes.len());
        let label_id = self.core.intern(&label);
        self.core.span_stacks.push(Vec::new());
        if let Some(p) = &mut self.core.prof {
            p.on_spawn(origin);
        }
        self.processes.push(Slot {
            proc: Some(proc),
            state: ProcState::Scheduled,
            label,
            label_id,
            daemon,
            epoch: 0,
            blocked_at: self.core.now,
        });
        self.core.push(self.core.now, EventKind::Wake(id));
        id
    }

    fn snapshot_blocked(&self, i: usize, cell: CellId, at_least: u64) -> BlockedProcess {
        BlockedProcess {
            proc: ProcId(i),
            label: self.processes[i].label.clone(),
            cell,
            needed: at_least,
            actual: self.core.cells[cell.0],
            span_stack: self.core.span_stacks[i]
                .iter()
                .map(|&id| self.core.labels[id as usize].clone())
                .collect(),
        }
    }

    /// Runs until every process is done and the event queue is empty.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the queue drains while non-daemon
    /// processes are still blocked — i.e. a `wait` that can never be
    /// satisfied — and [`SimError::Timeout`] if a blocking wait outlives
    /// its deadline (an explicit [`Step::WaitCellTimeout`] or the fault
    /// plan's watchdog). After a timeout, call [`Engine::abort`] before
    /// reusing the engine.
    pub fn run(&mut self) -> Result<(), SimError> {
        let mut spawned: Vec<(Box<dyn Process<W>>, String, bool)> = Vec::new();
        while let Some(Reverse(ev)) = self.core.queue.pop() {
            debug_assert!(ev.time >= self.core.now, "time went backwards");
            if let EventKind::TimeoutCheck(pid, epoch) = ev.kind {
                let slot = &self.processes[pid.0];
                let fired = slot.epoch == epoch && matches!(slot.state, ProcState::Blocked { .. });
                if !fired {
                    // Stale check: the guarded wait completed. Crucially the
                    // clock is NOT advanced, so an unused deadline leaves no
                    // trace on a healthy run's timings.
                    continue;
                }
                self.core.now = ev.time;
                self.core.events_processed += 1;
                let ProcState::Blocked { cell, at_least } = slot.state else {
                    unreachable!("fired timeout check on non-blocked process");
                };
                let waited = self.core.now - slot.blocked_at;
                let mut err = self.snapshot_blocked(pid.0, cell, at_least);
                return Err(SimError::Timeout(TimeoutError {
                    proc: err.proc,
                    label: std::mem::take(&mut err.label),
                    cell,
                    needed: at_least,
                    actual: err.actual,
                    at: self.core.now,
                    waited,
                    span_stack: std::mem::take(&mut err.span_stack),
                }));
            }
            self.core.now = ev.time;
            self.core.events_processed += 1;
            match ev.kind {
                EventKind::TimeoutCheck(..) => unreachable!("handled above"),
                EventKind::Wake(pid) => {
                    let slot = &mut self.processes[pid.0];
                    if slot.state != ProcState::Scheduled {
                        continue; // stale wake
                    }
                    let mut proc = slot.proc.take().expect("scheduled process missing body");
                    let label_id = slot.label_id;
                    self.core
                        .record(self.core.now, pid.0, label_id, TraceEventKind::StepBegin);
                    if let Some(p) = &mut self.core.prof {
                        p.open_node(pid.0, label_id, self.core.now);
                    }
                    let step = {
                        let mut ctx = Ctx {
                            core: &mut self.core,
                            world: &mut self.world,
                            spawned: &mut spawned,
                            pid,
                        };
                        proc.step(&mut ctx)
                    };
                    // The node that just ran is the spawn origin of any
                    // processes its step created.
                    let origin = self.core.prof.as_ref().and_then(|p| p.open_of(pid.0));
                    let step_end = match step {
                        // The step's busy window covers the yield span.
                        Step::Yield(d) => self.core.now + d,
                        _ => self.core.now,
                    };
                    if let Some(p) = &mut self.core.prof {
                        p.close_node(pid.0, step_end);
                    }
                    let slot = &mut self.processes[pid.0];
                    match step {
                        Step::Yield(d) => {
                            slot.proc = Some(proc);
                            slot.state = ProcState::Scheduled;
                            self.core.push(self.core.now + d, EventKind::Wake(pid));
                            self.core.record(
                                self.core.now + d,
                                pid.0,
                                label_id,
                                TraceEventKind::StepEnd,
                            );
                        }
                        Step::WaitCell { cell, at_least }
                        | Step::WaitCellTimeout { cell, at_least, .. } => {
                            slot.proc = Some(proc);
                            self.core.record(
                                self.core.now,
                                pid.0,
                                label_id,
                                TraceEventKind::StepEnd,
                            );
                            if self.core.cells[cell.0] >= at_least {
                                slot.state = ProcState::Scheduled;
                                self.core.push(self.core.now, EventKind::Wake(pid));
                            } else {
                                slot.state = ProcState::Blocked { cell, at_least };
                                slot.epoch += 1;
                                slot.blocked_at = self.core.now;
                                self.core.waiters[cell.0].push((at_least, pid));
                                // Effective deadline: the step's own, and/or
                                // the plan watchdog (non-daemons only —
                                // daemons legitimately park on idle FIFOs).
                                let explicit = match step {
                                    Step::WaitCellTimeout { timeout, .. } => Some(timeout),
                                    _ => None,
                                };
                                let watchdog = if slot.daemon {
                                    None
                                } else {
                                    self.core.faults.as_ref().and_then(|p| p.wait_timeout)
                                };
                                let deadline = match (explicit, watchdog) {
                                    (Some(a), Some(b)) => Some(a.min(b)),
                                    (a, b) => a.or(b),
                                };
                                if let Some(d) = deadline {
                                    let epoch = slot.epoch;
                                    self.core.push(
                                        self.core.now + d,
                                        EventKind::TimeoutCheck(pid, epoch),
                                    );
                                }
                            }
                        }
                        Step::Done => {
                            slot.state = ProcState::Done;
                            self.core.record(
                                self.core.now,
                                pid.0,
                                label_id,
                                TraceEventKind::StepEnd,
                            );
                            // proc dropped here
                        }
                    }
                    for (p, label, daemon) in spawned.drain(..) {
                        self.spawn_boxed(p, label, daemon, origin);
                    }
                }
                EventKind::CellAdd(cell, delta, issue) => {
                    self.core.cells[cell.0] += delta;
                    let value = self.core.cells[cell.0];
                    let waiters = &mut self.core.waiters[cell.0];
                    let mut i = 0;
                    while i < waiters.len() {
                        if waiters[i].0 <= value {
                            let (_, pid) = waiters.swap_remove(i);
                            self.processes[pid.0].state = ProcState::Scheduled;
                            if let Some(p) = &mut self.core.prof {
                                p.on_signal_wake(pid.0, issue);
                            }
                            let seq = self.core.seq;
                            self.core.seq += 1;
                            self.core.queue.push(Reverse(Ev {
                                time: self.core.now,
                                seq,
                                kind: EventKind::Wake(pid),
                            }));
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        }
        let mut blocked = Vec::new();
        let mut daemons = Vec::new();
        for (i, s) in self.processes.iter().enumerate() {
            if let ProcState::Blocked { cell, at_least } = s.state {
                let snap = self.snapshot_blocked(i, cell, at_least);
                if s.daemon {
                    daemons.push(snap);
                } else {
                    blocked.push(snap);
                }
            }
        }
        if blocked.is_empty() {
            // Daemon-only parked processes at quiescence are the normal
            // idle state of proxy threads, not a deadlock.
            Ok(())
        } else {
            Err(SimError::Deadlock(DeadlockError {
                blocked,
                daemons,
                at: self.core.now,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::WakeCause;

    /// Two processes: a producer signalling a cell after 100ns, and a
    /// consumer blocked on it.
    #[test]
    fn producer_consumer_wakeup() {
        struct Producer {
            cell: CellId,
            fired: bool,
        }
        impl Process<Vec<&'static str>> for Producer {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<&'static str>>) -> Step {
                if self.fired {
                    ctx.world.push("produced");
                    ctx.cell_add(self.cell, 1);
                    return Step::Done;
                }
                self.fired = true;
                Step::Yield(Duration::from_ns(100.0))
            }
        }
        struct Consumer {
            cell: CellId,
            waited: bool,
        }
        impl Process<Vec<&'static str>> for Consumer {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<&'static str>>) -> Step {
                if self.waited {
                    ctx.world.push("consumed");
                    return Step::Done;
                }
                self.waited = true;
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
        }

        let mut e = Engine::new(Vec::new());
        let cell = e.alloc_cell();
        e.spawn(Consumer {
            cell,
            waited: false,
        });
        e.spawn(Producer { cell, fired: false });
        e.run().unwrap();
        assert_eq!(*e.world(), vec!["produced", "consumed"]);
        assert_eq!(e.now().as_ns(), 100.0);
    }

    #[test]
    fn deadlock_is_reported_with_diagnostics() {
        struct Stuck {
            cell: CellId,
        }
        impl Process<()> for Stuck {
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 7,
                }
            }
            fn label(&self) -> String {
                "stuck-waiter".to_owned()
            }
        }
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn(Stuck { cell });
        let err = e.run().unwrap_err();
        let dead = err.as_deadlock().expect("quiescent stall is a deadlock");
        assert_eq!(dead.blocked.len(), 1);
        assert_eq!(dead.blocked[0].needed, 7);
        assert_eq!(dead.blocked[0].actual, 0);
        assert!(err.to_string().contains("stuck-waiter"));
    }

    #[test]
    fn deadlock_reports_open_span_stack() {
        struct Stuck {
            cell: CellId,
        }
        impl Process<()> for Stuck {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.span_begin("allreduce");
                ctx.span_begin("wait.mem_sem");
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
            fn label(&self) -> String {
                "tb r0 b0".to_owned()
            }
        }
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn(Stuck { cell });
        let err = e.run().unwrap_err();
        let dead = err.as_deadlock().expect("deadlock");
        assert_eq!(
            dead.blocked[0].span_stack,
            vec!["allreduce", "wait.mem_sem"]
        );
        assert!(err.to_string().contains("in allreduce > wait.mem_sem"));
    }

    #[test]
    fn abort_closes_spans_and_flushes_busy_time() {
        struct Stuck {
            cell: CellId,
            res: ResourceId,
        }
        impl Process<()> for Stuck {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.span_begin("allreduce");
                ctx.span_begin("wait.mem_sem");
                // Book the resource far beyond the abort instant; the
                // overhang must be refunded when the run is killed.
                ctx.acquire(self.res, Duration::from_us(1000.0));
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
            fn label(&self) -> String {
                "tb r0 b0".to_owned()
            }
        }
        let mut e = Engine::new(());
        e.enable_tracing();
        let cell = e.alloc_cell();
        let res = e.alloc_resource();
        e.spawn(Stuck { cell, res });
        e.run().unwrap_err();
        e.abort();
        // Post-mortem trace is balanced: every SpanBegin has a SpanEnd.
        let trace = e.take_trace().expect("tracing enabled");
        assert_eq!(trace.unmatched_begins(), 0);
        let json = trace.to_chrome_json();
        assert_eq!(json.matches("\"ph\":\"b\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"e\"").count(), 2);
        // Busy time past the abort instant is refunded: nothing beyond
        // the virtual clock can have actually happened.
        assert!(e.metrics().busy(res) <= e.now() - Time::ZERO);
        // The engine accepts new work after the teardown.
        e.spawn(Stuck { cell, res });
    }

    #[test]
    fn metrics_track_queue_delay_bytes_and_counters() {
        struct Xfer {
            res: ResourceId,
        }
        impl Process<()> for Xfer {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.acquire(self.res, Duration::from_ns(10.0));
                ctx.meter_bytes(self.res, 128);
                ctx.count("ops.puts", 1);
                Step::Done
            }
        }
        let mut e = Engine::new(());
        let res = e.alloc_resource();
        e.label_resource(res, "egress r0");
        e.spawn(Xfer { res });
        e.spawn(Xfer { res });
        e.run().unwrap();
        let s = e.metrics().resource(res);
        assert_eq!(s.label, "egress r0");
        assert_eq!(s.busy.as_ns(), 20.0);
        assert_eq!(s.bytes, 256);
        assert_eq!(s.acquires, 2);
        // The second acquisition at t=0 queued behind the first for 10ns.
        assert_eq!(s.queue_delay.as_ns(), 10.0);
        assert_eq!(e.metrics().counter("ops.puts"), 2);
    }

    /// Two writers contending for one link: the sum of busy time and
    /// queueing delay decomposes exactly to the makespan. This identity
    /// is load-bearing for critical-path blame buckets (`link-busy` +
    /// `link-queue` must tile a contended link's timeline with no gap
    /// and no overlap).
    #[test]
    fn two_writers_one_link_busy_plus_queue_decompose_to_makespan() {
        struct Writer {
            res: ResourceId,
            busy: Duration,
            out: usize,
        }
        impl Process<Vec<Time>> for Writer {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<Time>>) -> Step {
                let done = ctx.acquire(self.res, self.busy);
                ctx.world[self.out] = done;
                Step::Done
            }
        }
        let mut e = Engine::new(vec![Time::ZERO; 2]);
        let res = e.alloc_resource();
        e.spawn(Writer {
            res,
            busy: Duration::from_ns(10.0),
            out: 0,
        });
        e.spawn(Writer {
            res,
            busy: Duration::from_ns(15.0),
            out: 1,
        });
        e.run().unwrap();
        let makespan = e.world()[1] - Time::ZERO;
        assert_eq!(makespan.as_ns(), 25.0);
        let s = e.metrics().resource(res);
        // Both writers requested t=0, so the link never idled: its total
        // busy time IS the makespan, exactly (picosecond equality).
        assert_eq!(s.busy, makespan);
        // The second writer queued for exactly the first one's busy time,
        // and its completion decomposes as queue-delay + own busy.
        assert_eq!(s.queue_delay.as_ns(), 10.0);
        assert_eq!(
            e.world()[1] - Time::ZERO,
            s.queue_delay + Duration::from_ns(15.0)
        );
    }

    #[test]
    fn dep_graph_records_signal_edges_and_acquires() {
        struct Producer {
            cell: CellId,
            res: ResourceId,
        }
        impl Process<()> for Producer {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                // A 10ns transfer followed by a delivery 2ns after it
                // lands, as a wire put would schedule.
                let done = ctx.acquire(self.res, Duration::from_ns(10.0));
                ctx.cell_add_at(self.cell, 1, done + Duration::from_ns(2.0));
                Step::Done
            }
            fn label(&self) -> String {
                "producer".to_owned()
            }
        }
        struct Consumer {
            cell: CellId,
            waited: bool,
        }
        impl Process<()> for Consumer {
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
                if self.waited {
                    return Step::Done;
                }
                self.waited = true;
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
            fn label(&self) -> String {
                "consumer".to_owned()
            }
        }
        let mut e = Engine::new(());
        e.enable_profiling();
        let cell = e.alloc_cell();
        let res = e.alloc_resource();
        e.spawn(Consumer {
            cell,
            waited: false,
        });
        e.spawn(Producer { cell, res });
        e.run().unwrap();
        let g = e.take_dep_graph().expect("profiling enabled");
        assert!(e.take_dep_graph().is_some(), "recorder stays installed");

        // The producer's node carries the acquire.
        let prod = g
            .nodes
            .iter()
            .find(|n| g.label(n) == "producer")
            .expect("producer node");
        assert_eq!(prod.acquires.len(), 1);
        assert_eq!(prod.acquires[0].start.as_ns(), 0.0);
        assert_eq!(prod.acquires[0].done.as_ns(), 10.0);
        assert_eq!(prod.cause, WakeCause::Root);

        // The consumer's woken step carries a Signal edge back to the
        // producer's issue, with the right issue and delivery instants.
        let last = g.last_node().expect("nonempty graph");
        let woken = &g.nodes[last as usize];
        assert_eq!(g.label(woken), "consumer");
        assert_eq!(woken.begin.as_ns(), 12.0);
        let WakeCause::Signal { issue } = woken.cause else {
            panic!("expected Signal cause, got {:?}", woken.cause);
        };
        let iss = g.issues[issue as usize];
        assert_eq!(g.label(&g.nodes[iss.node as usize]), "producer");
        assert_eq!(iss.at.as_ns(), 0.0);
        assert_eq!(iss.deliver_at.as_ns(), 12.0);
        // Edges point backward: indices are a topological order.
        assert!(iss.node < last);
    }

    #[test]
    fn dep_graph_records_spawn_origin_and_seq_edges() {
        struct Parent;
        impl Process<()> for Parent {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.spawn(Child(false));
                Step::Done
            }
            fn label(&self) -> String {
                "parent".to_owned()
            }
        }
        struct Child(bool);
        impl Process<()> for Child {
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
                if self.0 {
                    return Step::Done;
                }
                self.0 = true;
                Step::Yield(Duration::from_ns(5.0))
            }
            fn label(&self) -> String {
                "child".to_owned()
            }
        }
        let mut e = Engine::new(());
        e.enable_profiling();
        e.spawn(Parent);
        e.run().unwrap();
        let g = e.take_dep_graph().unwrap();
        let first_child = g
            .nodes
            .iter()
            .position(|n| g.label(n) == "child")
            .expect("child node");
        let WakeCause::SpawnedBy { node } = g.nodes[first_child].cause else {
            panic!("expected SpawnedBy, got {:?}", g.nodes[first_child].cause);
        };
        assert_eq!(g.label(&g.nodes[node as usize]), "parent");
        // The child's yield window is its node's busy interval, and its
        // second step chains with a Seq edge.
        assert_eq!(g.nodes[first_child].end.as_ns(), 5.0);
        let second = &g.nodes[g.last_node().unwrap() as usize];
        assert_eq!(second.cause, WakeCause::Seq);
        assert_eq!(second.prev, Some(first_child as u32));
        assert_eq!(second.begin.as_ns(), 5.0);
    }

    #[test]
    fn resource_serializes_transfers() {
        // Two processes acquire the same 10ns resource at t=0; completions
        // must be 10ns and 20ns.
        struct Xfer {
            res: ResourceId,
            out: usize,
        }
        impl Process<Vec<Time>> for Xfer {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<Time>>) -> Step {
                let done = ctx.acquire(self.res, Duration::from_ns(10.0));
                ctx.world[self.out] = done;
                Step::Done
            }
        }
        let mut e = Engine::new(vec![Time::ZERO; 2]);
        let res = e.alloc_resource();
        e.spawn(Xfer { res, out: 0 });
        e.spawn(Xfer { res, out: 1 });
        e.run().unwrap();
        assert_eq!(e.world()[0].as_ns(), 10.0);
        assert_eq!(e.world()[1].as_ns(), 20.0);
    }

    #[test]
    fn delayed_cell_add_wakes_at_right_time() {
        struct Waiter {
            cell: CellId,
            started: bool,
        }
        impl Process<Option<Time>> for Waiter {
            fn step(&mut self, ctx: &mut Ctx<'_, Option<Time>>) -> Step {
                if self.started {
                    *ctx.world = Some(ctx.now());
                    return Step::Done;
                }
                self.started = true;
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
        }
        struct Signaller {
            cell: CellId,
        }
        impl Process<Option<Time>> for Signaller {
            fn step(&mut self, ctx: &mut Ctx<'_, Option<Time>>) -> Step {
                let at = ctx.now() + Duration::from_us(3.0);
                ctx.cell_add_at(self.cell, 1, at);
                Step::Done
            }
        }
        let mut e = Engine::new(None);
        let cell = e.alloc_cell();
        e.spawn(Waiter {
            cell,
            started: false,
        });
        e.spawn(Signaller { cell });
        e.run().unwrap();
        assert_eq!(e.world().unwrap().as_us(), 3.0);
    }

    #[test]
    fn wait_on_already_satisfied_cell_continues_immediately() {
        struct W2 {
            cell: CellId,
            phase: u8,
        }
        impl Process<u32> for W2 {
            fn step(&mut self, ctx: &mut Ctx<'_, u32>) -> Step {
                match self.phase {
                    0 => {
                        ctx.cell_add(self.cell, 5);
                        self.phase = 1;
                        Step::Yield(Duration::ZERO)
                    }
                    1 => {
                        self.phase = 2;
                        Step::WaitCell {
                            cell: self.cell,
                            at_least: 5,
                        }
                    }
                    _ => {
                        *ctx.world += 1;
                        Step::Done
                    }
                }
            }
        }
        let mut e = Engine::new(0u32);
        let cell = e.alloc_cell();
        e.spawn(W2 { cell, phase: 0 });
        e.run().unwrap();
        assert_eq!(*e.world(), 1);
        assert_eq!(e.now(), Time::ZERO);
    }

    #[test]
    fn spawned_process_runs() {
        struct Parent;
        impl Process<u32> for Parent {
            fn step(&mut self, ctx: &mut Ctx<'_, u32>) -> Step {
                ctx.spawn(|ctx: &mut Ctx<'_, u32>| {
                    *ctx.world += 10;
                    Step::Done
                });
                Step::Done
            }
        }
        let mut e = Engine::new(0u32);
        e.spawn(Parent);
        e.run().unwrap();
        assert_eq!(*e.world(), 10);
    }

    #[test]
    fn determinism_same_seed_same_order() {
        // Many processes contending on one resource; event order must be
        // identical across runs.
        fn run_once() -> Vec<u64> {
            struct P {
                res: ResourceId,
                idx: u64,
            }
            impl Process<Vec<u64>> for P {
                fn step(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) -> Step {
                    let _ = ctx.acquire(self.res, Duration::from_ns(7.0));
                    ctx.world.push(self.idx);
                    Step::Done
                }
            }
            let mut e = Engine::new(Vec::new());
            let res = e.alloc_resource();
            for idx in 0..64 {
                e.spawn(P { res, idx });
            }
            e.run().unwrap();
            e.into_world()
        }
        assert_eq!(run_once(), run_once());
    }

    struct Parked {
        cell: CellId,
    }
    impl Process<()> for Parked {
        fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
            Step::WaitCell {
                cell: self.cell,
                at_least: 1,
            }
        }
        fn label(&self) -> String {
            "parked".to_owned()
        }
    }

    #[test]
    fn daemon_only_blocked_is_not_a_deadlock() {
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn_daemon(Parked { cell });
        e.run().unwrap();
    }

    #[test]
    fn deadlock_lists_parked_daemons_separately() {
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn_daemon(Parked { cell });
        e.spawn(Parked { cell });
        let err = e.run().unwrap_err();
        let dead = err.as_deadlock().expect("deadlock");
        assert_eq!(dead.blocked.len(), 1, "only the non-daemon counts");
        assert_eq!(dead.daemons.len(), 1);
        let msg = err.to_string();
        assert!(msg.contains("1 blocked process(es)"), "{msg}");
        assert!(msg.contains("daemon process(es) also parked"), "{msg}");
    }

    #[test]
    fn wait_with_deadline_times_out_with_span_stack() {
        struct Hung {
            cell: CellId,
        }
        impl Process<()> for Hung {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.span_begin("allreduce");
                ctx.span_begin("wait.port_flush");
                Step::WaitCellTimeout {
                    cell: self.cell,
                    at_least: 1,
                    timeout: Duration::from_us(5.0),
                }
            }
            fn label(&self) -> String {
                "tb r0 b0".to_owned()
            }
        }
        // A second process keeps the queue alive past the deadline, so the
        // timeout fires mid-simulation, not at quiescence.
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn(Hung { cell });
        e.spawn(|_: &mut Ctx<'_, ()>| Step::Yield(Duration::from_us(100.0)));
        let err = e.run().unwrap_err();
        let t = err.as_timeout().expect("timeout, not deadlock");
        assert_eq!(t.waited, Duration::from_us(5.0));
        assert_eq!(t.at, Time::from_ps(5_000_000));
        assert_eq!(t.span_stack, vec!["allreduce", "wait.port_flush"]);
        assert!(err.to_string().contains("wait.port_flush"), "{err}");
        // Clean teardown: abort, then the engine accepts fresh work.
        e.abort();
        e.spawn(|ctx: &mut Ctx<'_, ()>| {
            let _ = ctx.now();
            Step::Done
        });
        e.run().unwrap();
    }

    #[test]
    fn satisfied_wait_leaves_no_timeout_trace() {
        // The deadline event outlives the wait; the stale check must not
        // advance the clock past the real completion time.
        struct Quick {
            cell: CellId,
            phase: u8,
        }
        impl Process<()> for Quick {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        ctx.cell_add_at(self.cell, 1, ctx.now() + Duration::from_us(1.0));
                        Step::WaitCellTimeout {
                            cell: self.cell,
                            at_least: 1,
                            timeout: Duration::from_us(50.0),
                        }
                    }
                    _ => Step::Done,
                }
            }
        }
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn(Quick { cell, phase: 0 });
        e.run().unwrap();
        assert_eq!(
            e.now(),
            Time::from_ps(1_000_000),
            "clock stops at completion"
        );
    }

    #[test]
    fn fault_plan_watchdog_converts_hang_to_timeout_but_spares_daemons() {
        let mut e = Engine::new(());
        e.set_fault_plan(FaultPlan::new(1).with_wait_timeout(Duration::from_us(2.0)));
        let cell = e.alloc_cell();
        e.spawn_daemon(Parked { cell });
        // Daemon alone: parked forever, watchdog does not apply.
        e.run().unwrap();
        // Non-daemon: watchdog fires.
        e.spawn(Parked { cell });
        let err = e.run().unwrap_err();
        assert!(err.as_timeout().is_some(), "expected timeout, got {err}");
    }

    #[test]
    fn engine_can_run_multiple_batches_with_persistent_clock() {
        let mut e = Engine::new(());
        e.spawn(|_: &mut Ctx<'_, ()>| Step::Yield(Duration::from_us(1.0)));
        // First batch: the closure yields once then we make it finish by
        // running until the queue drains. The closure above never
        // terminates, so use a bounded one instead.
        let mut e2 = Engine::new(0u32);
        struct Once;
        impl Process<u32> for Once {
            fn step(&mut self, ctx: &mut Ctx<'_, u32>) -> Step {
                *ctx.world += 1;
                Step::Done
            }
        }
        e2.spawn(Once);
        e2.run().unwrap();
        let t1 = e2.now();
        e2.spawn(Once);
        e2.run().unwrap();
        assert_eq!(*e2.world(), 2);
        assert!(e2.now() >= t1);
        drop(e);
    }
}
