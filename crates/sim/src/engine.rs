//! The discrete-event engine: event queue, cells, resources, scheduling.

use std::error::Error;
use std::fmt;

use crate::calendar::{CalendarQueue, Entry};
use crate::depgraph::{DepGraph, ProfState};
use crate::fault::FaultPlan;
use crate::intern::Interner;
use crate::metrics::{CounterId, Metrics};
use crate::process::{Process, Step};
use crate::time::{Duration, Time};
use crate::trace::{Trace, TraceEventKind};

/// Identifies a process spawned on an [`Engine`].
///
/// When neither tracing nor profiling is enabled, the engine recycles the
/// slots of finished processes, so a `ProcId` may be reissued to a later
/// spawn; pending events carry a generation stamp so a recycled id can
/// never be woken by its previous incarnation's events.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(usize);

/// Identifies a monotonic notification cell.
///
/// Cells model every cross-process synchronization primitive in the
/// simulation: GPU semaphores, proxy FIFO head/tail counters, barrier
/// arrival counts, and LL-protocol flag readiness. A cell holds a `u64`
/// that only ever increases; processes block until a cell reaches a
/// threshold and are woken exactly when it does.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(usize);

/// A pre-resolved span label for [`Ctx::span_begin_id`].
///
/// Resolving a label to an id ([`Ctx::span_label_id`] /
/// [`Engine::span_label_id`]) hashes the string once; opening a span by
/// id afterwards is a plain vector push. Ids are engine-local.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct SpanLabelId(u32);

/// Identifies a serializing resource (an interconnect link port, a DMA
/// engine, a NIC).
///
/// A resource is busy until some instant; acquiring it for a span returns
/// the completion time and pushes the busy horizon forward. Concurrent
/// transfers over the same link thereby serialize, which is how the
/// simulation models bandwidth sharing.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) usize);

/// Sentinel for "label not interned yet" (lazy interning keeps untraced
/// spawns allocation-free).
const UNSET_LABEL: u32 = u32::MAX;

/// Sentinel index for arena linked lists.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Wake a process. The `u32` is the slot generation the wake targets;
    /// a mismatch means the slot was recycled and the wake is stale.
    Wake(ProcId, u32),
    /// A cell update. The `u32` is the index of the issuing step's
    /// [`crate::depgraph::IssueRec`] when profiling is enabled
    /// (`u32::MAX` otherwise), so a wake caused by this update can be
    /// traced back to its issuer.
    CellAdd(CellId, u64, u32),
    /// Deadline check for a blocking wait. The `u32` is the slot
    /// generation and the `u64` the blocking epoch when the check was
    /// scheduled; any mismatch means the wait completed (or the slot was
    /// recycled) and the check is stale.
    TimeoutCheck(ProcId, u32, u64),
}

/// A queued event: raw-picosecond time, global sequence, payload.
type Ev = Entry<EventKind>;

/// The pending-event store. The calendar queue is the production path;
/// the legacy binary heap is kept only behind the `ab-legacy-queue`
/// feature so differential tests can replay identical programs through
/// both and assert bit-identical results.
enum EventQueue {
    Calendar(CalendarQueue<EventKind>),
    #[cfg(feature = "ab-legacy-queue")]
    Legacy(std::collections::BinaryHeap<std::cmp::Reverse<LegacyEv>>),
}

#[cfg(feature = "ab-legacy-queue")]
#[derive(PartialEq, Eq)]
struct LegacyEv(Ev);

#[cfg(feature = "ab-legacy-queue")]
impl Ord for LegacyEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.time, self.0.seq).cmp(&(other.0.time, other.0.seq))
    }
}

#[cfg(feature = "ab-legacy-queue")]
impl PartialOrd for LegacyEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl EventQueue {
    fn push(&mut self, ev: Ev) {
        match self {
            EventQueue::Calendar(q) => q.push(ev),
            #[cfg(feature = "ab-legacy-queue")]
            EventQueue::Legacy(q) => q.push(std::cmp::Reverse(LegacyEv(ev))),
        }
    }

    fn pop(&mut self) -> Option<Ev> {
        match self {
            EventQueue::Calendar(q) => q.pop(),
            #[cfg(feature = "ab-legacy-queue")]
            EventQueue::Legacy(q) => q.pop().map(|std::cmp::Reverse(LegacyEv(e))| e),
        }
    }

    fn clear(&mut self) {
        match self {
            EventQueue::Calendar(q) => q.clear(),
            #[cfg(feature = "ab-legacy-queue")]
            EventQueue::Legacy(q) => q.clear(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Has a pending wake event in the queue.
    Scheduled,
    /// Waiting for a cell to reach a threshold.
    Blocked { cell: CellId, at_least: u64 },
    /// Finished; never stepped again.
    Done,
}

struct Slot<W> {
    proc: Option<Box<dyn Process<W>>>,
    state: ProcState,
    /// Interned label id, or [`UNSET_LABEL`] until first needed. Labels
    /// are formatted and interned lazily — at the first traced/profiled
    /// step, or when an error snapshot wants one — so a plain run never
    /// pays a per-spawn `String`.
    label_id: u32,
    /// Daemons (e.g. CPU proxy threads) may remain blocked when the queue
    /// drains without counting as deadlock.
    daemon: bool,
    /// Incremented each time the slot is recycled for a new process;
    /// stamped into [`EventKind::Wake`]/[`EventKind::TimeoutCheck`] so
    /// events aimed at a previous incarnation are discarded.
    gen: u32,
    /// Incremented every time the process blocks; lets a pending
    /// [`EventKind::TimeoutCheck`] detect that the wait it guarded has
    /// already completed. Deliberately *not* reset when the slot is
    /// recycled, as a second line of defense against stale checks.
    epoch: u64,
    /// When the current (or most recent) blocking wait began.
    blocked_at: Time,
}

/// A cell's value plus the head/tail of its waiter list in the arena.
/// Waiters append at the tail and are woken in list (i.e. block) order.
#[derive(Debug, Clone, Copy)]
struct CellSlot {
    value: u64,
    head: u32,
    tail: u32,
}

/// One blocked waiter: an intrusive singly-linked node.
#[derive(Debug, Clone, Copy)]
struct WaiterNode {
    at_least: u64,
    pid: u32,
    next: u32,
}

/// Arena for waiter nodes: blocking a process and waking it are both a
/// free-list pop/push — no per-wait allocation once the arena has grown
/// to the simulation's high-water mark of concurrent waiters.
struct WaiterArena {
    nodes: Vec<WaiterNode>,
    free: u32,
}

impl Default for WaiterArena {
    fn default() -> Self {
        WaiterArena {
            nodes: Vec::new(),
            free: NIL,
        }
    }
}

impl WaiterArena {
    fn alloc(&mut self, at_least: u64, pid: u32) -> u32 {
        let node = WaiterNode {
            at_least,
            pid,
            next: NIL,
        };
        if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("waiter arena overflow");
            self.nodes.push(node);
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        self.nodes[idx as usize].next = self.free;
        self.free = idx;
    }

    fn reset(&mut self) {
        self.nodes.clear();
        self.free = NIL;
    }
}

/// Engine internals shared with processes through [`Ctx`].
struct Core {
    now: Time,
    seq: u64,
    queue: EventQueue,
    cells: Vec<CellSlot>,
    waiters: WaiterArena,
    /// Per-resource busy-until horizon.
    resources: Vec<Time>,
    events_processed: u64,
    /// Events whose requested time was in the past and got clamped to
    /// `now` (see [`Core::push`]).
    clamped_past: u64,
    /// Counters and per-resource accounting.
    metrics: Metrics,
    /// Interned label table shared by the trace and the span stacks.
    /// Single-storage: each distinct label is owned exactly once.
    labels: Interner,
    /// Per-process stack of open explicit spans (interned label ids).
    span_stacks: Vec<Vec<u32>>,
    /// Recording sink, when tracing is enabled.
    trace: Option<Trace>,
    /// Dependency-graph recorder, when profiling is enabled.
    prof: Option<ProfState>,
    /// Deterministic fault schedule, when injection is enabled.
    faults: Option<FaultPlan>,
}

impl Core {
    /// Queues an event. A request in the past is **clamped to now** (and
    /// counted — see [`Engine::clamped_past_events`]): the old
    /// `debug_assert!` left release builds free to reorder the queue
    /// behind the clock, which silently corrupts causality; clamping
    /// preserves it in every build profile.
    fn push(&mut self, time: Time, kind: EventKind) {
        let mut time = time.as_ps();
        let now = self.now.as_ps();
        if time < now {
            time = now;
            self.clamped_past += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Ev {
            time,
            seq,
            payload: kind,
        });
    }

    /// Interns a label, returning its stable index. Allocates only the
    /// first time a distinct label is seen (single owned copy).
    fn intern(&mut self, label: &str) -> u32 {
        self.labels.get_or_intern(label)
    }

    fn record(&mut self, at: Time, proc_index: usize, label: u32, kind: TraceEventKind) {
        if let Some(trace) = &mut self.trace {
            trace.push(at, proc_index, label, kind);
        }
    }

    /// Whether any observer needs per-step labels and stable slot ids.
    fn observed(&self) -> bool {
        self.trace.is_some() || self.prof.is_some()
    }
}

/// A process's view of the engine during a step.
///
/// Grants access to the simulation world, the virtual clock, cells, and
/// resources. See the crate-level docs for an end-to-end example.
pub struct Ctx<'a, W> {
    core: &'a mut Core,
    /// The domain state (GPU memories, topology, cost model, ...).
    pub world: &'a mut W,
    spawned: &'a mut Vec<(Box<dyn Process<W>>, bool)>,
    /// The process currently being stepped.
    pid: ProcId,
}

impl<W> Ctx<'_, W> {
    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// Current value of a cell.
    pub fn cell(&self, cell: CellId) -> u64 {
        self.core.cells[cell.0].value
    }

    /// Adds `delta` to a cell immediately, waking satisfied waiters at the
    /// current instant.
    pub fn cell_add(&mut self, cell: CellId, delta: u64) {
        let at = self.core.now;
        self.cell_add_at(cell, delta, at);
    }

    /// Adds `delta` to a cell at a future instant (e.g. when a signal lands
    /// on the peer GPU after its propagation latency).
    ///
    /// An `at` in the past is clamped to the current instant (and counted
    /// in [`Engine::clamped_past_events`]): updates can never be reordered
    /// behind the clock.
    pub fn cell_add_at(&mut self, cell: CellId, delta: u64, at: Time) {
        let issue = match &mut self.core.prof {
            Some(p) => p.on_issue(self.pid.0, self.core.now, at),
            None => u32::MAX,
        };
        self.core.push(at, EventKind::CellAdd(cell, delta, issue));
    }

    /// Allocates a fresh cell with value zero.
    pub fn alloc_cell(&mut self) -> CellId {
        self.core.cells.push(CellSlot {
            value: 0,
            head: NIL,
            tail: NIL,
        });
        CellId(self.core.cells.len() - 1)
    }

    /// Allocates a fresh resource that is free immediately.
    pub fn alloc_resource(&mut self) -> ResourceId {
        self.core.resources.push(Time::ZERO);
        self.core.metrics.add_resource();
        ResourceId(self.core.resources.len() - 1)
    }

    /// Occupies `resource` for `busy` starting no earlier than now, and
    /// returns the completion instant.
    pub fn acquire(&mut self, resource: ResourceId, busy: Duration) -> Time {
        self.acquire_after(resource, self.core.now, busy)
    }

    /// Occupies `resource` for `busy` starting no earlier than `earliest`
    /// (and no earlier than the resource becomes free), returning the
    /// completion instant.
    ///
    /// The time spent queued behind earlier acquisitions (actual start
    /// minus `earliest`) is accumulated as the resource's queueing delay.
    pub fn acquire_after(&mut self, resource: ResourceId, earliest: Time, busy: Duration) -> Time {
        let free_at = &mut self.core.resources[resource.0];
        let start = (*free_at).max(earliest);
        let done = start + busy;
        *free_at = done;
        self.core
            .metrics
            .on_acquire(resource, busy, start - earliest);
        if let Some(p) = &mut self.core.prof {
            p.on_acquire(self.pid.0, resource.0, earliest, start, done);
        }
        done
    }

    /// The instant a resource becomes free (without occupying it).
    pub fn resource_free_at(&self, resource: ResourceId) -> Time {
        self.core.resources[resource.0]
    }

    /// Total time this resource has been occupied so far (for
    /// utilization reporting).
    pub fn resource_busy(&self, resource: ResourceId) -> Duration {
        self.core.metrics.busy(resource)
    }

    /// Attaches a diagnostic label to a resource (shown in metrics
    /// reports).
    pub fn label_resource(&mut self, resource: ResourceId, label: &str) {
        self.core.metrics.set_label(resource, label);
    }

    /// Meters `bytes` as carried by `resource` (per-link byte accounting).
    pub fn meter_bytes(&mut self, resource: ResourceId, bytes: u64) {
        self.core.metrics.add_bytes(resource, bytes);
    }

    /// Adds `delta` to the named metrics counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.core.metrics.inc(name, delta);
    }

    /// Resolves a counter name to a stable id for [`Ctx::count_id`]. Do
    /// this once per process (or per program), not per increment.
    pub fn counter_id(&mut self, name: &str) -> CounterId {
        self.core.metrics.counter_id(name)
    }

    /// Adds `delta` to a pre-resolved counter: a single array add, the
    /// form hot per-instruction accounting should use.
    pub fn count_id(&mut self, id: CounterId, delta: u64) {
        self.core.metrics.inc_id(id, delta);
    }

    /// Read access to the metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// The active fault plan, if injection is enabled for this run.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.core.faults.as_ref()
    }

    /// Opens a named span for the current process. The span appears in
    /// the trace (when tracing is enabled) and on the process's span
    /// stack, which is reported by [`DeadlockError`] if the process is
    /// still blocked when the simulation stalls.
    pub fn span_begin(&mut self, label: &str) {
        let id = self.core.intern(label);
        self.core.span_stacks[self.pid.0].push(id);
        self.core
            .record(self.core.now, self.pid.0, id, TraceEventKind::SpanBegin);
    }

    /// Resolves a span label to a stable id for [`Ctx::span_begin_id`].
    /// Do this once per process (or per launch), not per wait.
    pub fn span_label_id(&mut self, label: &str) -> SpanLabelId {
        SpanLabelId(self.core.intern(label))
    }

    /// Opens a span by pre-resolved label id: a plain vector push, the
    /// form hot per-wait paths should use (no string hashing).
    pub fn span_begin_id(&mut self, id: SpanLabelId) {
        self.core.span_stacks[self.pid.0].push(id.0);
        self.core
            .record(self.core.now, self.pid.0, id.0, TraceEventKind::SpanBegin);
    }

    /// Whether tracing is enabled for this engine. Guard any per-step
    /// label formatting for [`Ctx::trace_counter`] behind this check to
    /// keep untraced runs allocation-free.
    pub fn tracing(&self) -> bool {
        self.core.trace.is_some()
    }

    /// Records a named counter sample into the trace (a Chrome `C` event:
    /// a step-function counter track in Perfetto). No-op when tracing is
    /// disabled.
    pub fn trace_counter(&mut self, name: &str, value: u64) {
        if self.core.trace.is_some() {
            let id = self.core.intern(name);
            self.core.record(
                self.core.now,
                self.pid.0,
                id,
                TraceEventKind::Counter(value),
            );
        }
    }

    /// Closes the current process's innermost open span.
    pub fn span_end(&mut self) {
        if let Some(id) = self.core.span_stacks[self.pid.0].pop() {
            self.core
                .record(self.core.now, self.pid.0, id, TraceEventKind::SpanEnd);
        } else {
            debug_assert!(false, "span_end without a matching span_begin");
        }
    }

    /// Spawns a new process that will first run at the current instant.
    pub fn spawn<P: Process<W> + 'static>(&mut self, proc: P) {
        self.spawned.push((Box::new(proc), false));
    }

    /// Spawns a daemon process (see [`Engine::spawn_daemon`]).
    pub fn spawn_daemon<P: Process<W> + 'static>(&mut self, proc: P) {
        self.spawned.push((Box::new(proc), true));
    }
}

/// A blocked process recorded in a [`DeadlockError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedProcess {
    /// The blocked process.
    pub proc: ProcId,
    /// Its diagnostic label.
    pub label: String,
    /// The cell it is waiting on.
    pub cell: CellId,
    /// The threshold it needs.
    pub needed: u64,
    /// The cell's actual value when the simulation stalled.
    pub actual: u64,
    /// The process's open [`Ctx::span_begin`] spans, outermost first —
    /// e.g. `["allreduce", "wait.mem_sem"]` — showing *what* it was doing
    /// when it stalled, not just which cell it wanted.
    pub span_stack: Vec<String>,
}

/// The simulation stalled: the event queue drained while non-daemon
/// processes were still blocked on cells that can no longer change.
///
/// This almost always indicates a bug in a communication algorithm — a
/// `wait` without a matching `signal` — exactly the class of bug the
/// paper's synchronization discussion (§2.2.2) is about.
///
/// Daemon processes (CPU proxies parked on an idle FIFO) are *not* a
/// deadlock by themselves: when only daemons remain blocked at
/// quiescence, [`Engine::run`] returns `Ok`. When a real deadlock is
/// reported, any parked daemons are listed separately in
/// [`DeadlockError::daemons`] so a proxy retrying through a fault window
/// is never misread as the culprit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockError {
    /// Every non-daemon process still blocked when the queue drained.
    pub blocked: Vec<BlockedProcess>,
    /// Daemon processes that were also parked at the stall — reported
    /// for context, but not themselves evidence of deadlock.
    pub daemons: Vec<BlockedProcess>,
    /// The virtual time at which the simulation stalled.
    pub at: Time,
}

impl fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulation deadlocked at {} with {} blocked process(es):",
            self.at,
            self.blocked.len()
        )?;
        for b in &self.blocked {
            write!(
                f,
                "  {:?} [{}] waiting for {:?} >= {} (actual {})",
                b.proc, b.label, b.cell, b.needed, b.actual
            )?;
            if b.span_stack.is_empty() {
                writeln!(f)?;
            } else {
                writeln!(f, " in {}", b.span_stack.join(" > "))?;
            }
        }
        if !self.daemons.is_empty() {
            writeln!(
                f,
                "  note: {} daemon process(es) also parked (idle daemons are not a deadlock):",
                self.daemons.len()
            )?;
            for b in &self.daemons {
                writeln!(
                    f,
                    "    {:?} [{}] waiting for {:?} >= {} (actual {})",
                    b.proc, b.label, b.cell, b.needed, b.actual
                )?;
            }
        }
        Ok(())
    }
}

impl Error for DeadlockError {}

/// A blocking wait exceeded its virtual-time deadline.
///
/// Produced either by an explicit [`Step::WaitCellTimeout`] or by the
/// plan-wide watchdog ([`FaultPlan::wait_timeout`]). Unlike
/// [`DeadlockError`], which requires the whole simulation to quiesce,
/// a timeout fires while other processes may still be making progress —
/// it is how a permanent link-down surfaces as a typed error instead of
/// a silent hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeoutError {
    /// The process whose wait timed out.
    pub proc: ProcId,
    /// Its diagnostic label.
    pub label: String,
    /// The cell it was waiting on.
    pub cell: CellId,
    /// The threshold it needed.
    pub needed: u64,
    /// The cell's actual value at the deadline.
    pub actual: u64,
    /// The virtual time at which the deadline expired.
    pub at: Time,
    /// How long the process had been blocked.
    pub waited: Duration,
    /// The process's open spans, outermost first — names *what* was being
    /// waited for (e.g. `["allreduce", "wait.port_flush"]`).
    pub span_stack: Vec<String>,
}

impl fmt::Display for TimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wait timed out at {} after {}: {:?} [{}] waiting for {:?} >= {} (actual {})",
            self.at, self.waited, self.proc, self.label, self.cell, self.needed, self.actual
        )?;
        if !self.span_stack.is_empty() {
            write!(f, " in {}", self.span_stack.join(" > "))?;
        }
        Ok(())
    }
}

impl Error for TimeoutError {}

/// Why [`Engine::run`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The queue drained with non-daemon processes still blocked.
    Deadlock(DeadlockError),
    /// A blocking wait exceeded its deadline.
    Timeout(TimeoutError),
}

impl SimError {
    /// The inner deadlock, if that is what happened.
    pub fn as_deadlock(&self) -> Option<&DeadlockError> {
        match self {
            SimError::Deadlock(e) => Some(e),
            SimError::Timeout(_) => None,
        }
    }

    /// The inner timeout, if that is what happened.
    pub fn as_timeout(&self) -> Option<&TimeoutError> {
        match self {
            SimError::Timeout(e) => Some(e),
            SimError::Deadlock(_) => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(e) => e.fmt(f),
            SimError::Timeout(e) => e.fmt(f),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Deadlock(e) => Some(e),
            SimError::Timeout(e) => Some(e),
        }
    }
}

impl From<DeadlockError> for SimError {
    fn from(e: DeadlockError) -> SimError {
        SimError::Deadlock(e)
    }
}

impl From<TimeoutError> for SimError {
    fn from(e: TimeoutError) -> SimError {
        SimError::Timeout(e)
    }
}

/// The deterministic discrete-event engine.
///
/// Owns the virtual clock, the event queue, all processes, cells, and
/// resources, plus the domain world `W`. Construct with [`Engine::new`],
/// add processes with [`Engine::spawn`], then call [`Engine::run`].
///
/// Determinism: events are ordered by `(time, insertion sequence)`; no
/// wall-clock time or hash-iteration order influences scheduling, so a
/// given program always produces identical timings and world state.
pub struct Engine<W> {
    core: Core,
    world: W,
    processes: Vec<Slot<W>>,
    /// Recycled slot indices, usable while neither tracing nor profiling
    /// is enabled (observers key per-process state by slot index, so
    /// identity must be stable under observation).
    free_slots: Vec<u32>,
}

impl<W: fmt::Debug> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.core.now)
            .field("processes", &self.processes.len())
            .field("cells", &self.core.cells.len())
            .field("resources", &self.core.resources.len())
            .field("events_processed", &self.core.events_processed)
            .finish_non_exhaustive()
    }
}

impl<W> Engine<W> {
    /// Creates an engine at time zero wrapping the given world.
    pub fn new(world: W) -> Engine<W> {
        Engine {
            core: Core {
                now: Time::ZERO,
                seq: 0,
                queue: EventQueue::Calendar(CalendarQueue::default()),
                cells: Vec::new(),
                waiters: WaiterArena::default(),
                resources: Vec::new(),
                events_processed: 0,
                clamped_past: 0,
                metrics: Metrics::default(),
                labels: Interner::default(),
                span_stacks: Vec::new(),
                trace: None,
                prof: None,
                faults: None,
            },
            world,
            processes: Vec::new(),
            free_slots: Vec::new(),
        }
    }

    /// Replays all pending events through the legacy `BinaryHeap` queue
    /// instead of the calendar queue. Exists solely so differential tests
    /// can assert the two scheduler implementations produce bit-identical
    /// executions; never use it for real workloads.
    #[cfg(feature = "ab-legacy-queue")]
    pub fn use_legacy_binary_heap_queue(&mut self) {
        let mut heap = std::collections::BinaryHeap::new();
        while let Some(ev) = self.core.queue.pop() {
            heap.push(std::cmp::Reverse(LegacyEv(ev)));
        }
        self.core.queue = EventQueue::Legacy(heap);
    }

    /// Starts recording an execution [`Trace`] (paired begin/end events
    /// per process step plus explicit spans). Call [`Engine::take_trace`]
    /// to retrieve it.
    ///
    /// Enabling tracing also stops process-slot recycling: trace tracks
    /// are keyed by slot index, so indices must be stable from here on.
    pub fn enable_tracing(&mut self) {
        if self.core.trace.is_none() {
            self.core.trace = Some(Trace::default());
            self.free_slots.clear();
            // Spans opened before tracing began get a synthetic begin, so
            // their eventual ends (possibly recorded by an abort) balance.
            self.reopen_live_spans();
        }
    }

    /// Takes the recorded trace (if tracing was enabled), leaving a fresh
    /// empty trace in place so recording continues. The returned trace
    /// carries a snapshot of the label table; interned ids remain valid
    /// across takes because the table is append-only.
    ///
    /// Spans still open at take time (e.g. a daemon parked inside a wait
    /// span) are re-opened in the fresh trace with a synthetic
    /// `SpanBegin` at the current instant, so every trace segment is
    /// self-balanced: a later teardown's `SpanEnd` never lands in a
    /// segment missing its begin.
    pub fn take_trace(&mut self) -> Option<Trace> {
        let labels = self.core.labels.strings().to_vec();
        let taken = self.core.trace.as_mut().map(std::mem::take).map(|mut t| {
            t.labels = labels;
            t
        });
        if taken.is_some() {
            self.reopen_live_spans();
        }
        taken
    }

    /// Records a synthetic `SpanBegin` for every span currently open on a
    /// live process, anchoring them in the current (fresh) trace segment.
    fn reopen_live_spans(&mut self) {
        let now = self.core.now;
        for (i, stack) in self.core.span_stacks.iter().enumerate() {
            if self.processes[i].state == ProcState::Done {
                continue;
            }
            for &id in stack {
                if let Some(trace) = &mut self.core.trace {
                    trace.push(now, i, id, TraceEventKind::SpanBegin);
                }
            }
        }
    }

    /// Starts recording the execution dependency graph (one node per
    /// process step, with wake causes, spawn edges, and resource grants).
    /// Call [`Engine::take_dep_graph`] to retrieve it. Enable before
    /// spawning the work to profile: steps executed earlier are not
    /// recorded.
    ///
    /// Enabling profiling also stops process-slot recycling: the recorder
    /// keys per-process state by slot index.
    pub fn enable_profiling(&mut self) {
        if self.core.prof.is_none() {
            let mut p = ProfState::default();
            for _ in 0..self.processes.len() {
                p.on_spawn(None);
            }
            self.core.prof = Some(p);
            self.free_slots.clear();
        }
    }

    /// Takes the recorded dependency graph (if profiling was enabled),
    /// leaving a fresh recorder in place so recording continues. The
    /// graph carries snapshots of the process-label table and the
    /// resource labels.
    pub fn take_dep_graph(&mut self) -> Option<DepGraph> {
        let prof = self.core.prof.as_mut()?;
        let mut fresh = ProfState::default();
        for _ in 0..self.processes.len() {
            fresh.on_spawn(None);
        }
        let old = std::mem::replace(prof, fresh);
        Some(DepGraph {
            nodes: old.nodes,
            issues: old.issues,
            labels: self.core.labels.strings().to_vec(),
            resource_labels: self
                .core
                .metrics
                .resources()
                .into_iter()
                .map(|s| s.label)
                .collect(),
        })
    }

    /// Read access to the metrics registry (counters + per-resource
    /// accounting).
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Attaches a deterministic fault schedule. Install the plan before
    /// building communicators: setup code derives retry-jitter seeds from
    /// it, and collective planning consults its permanent outages.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.core.faults = Some(plan);
    }

    /// Removes the fault schedule, if any, and returns it.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.core.faults.take()
    }

    /// The active fault plan, if injection is enabled.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.core.faults.as_ref()
    }

    /// Tears down all outstanding work after a failed run: drops every
    /// unfinished process, clears the event queue and waiter lists, and
    /// *closes* every open span at the abort instant so a post-mortem
    /// trace is well-formed Chrome JSON. Resource busy horizons are
    /// clamped to now and the cancelled overhang is subtracted from
    /// [`Metrics`], so an aborted run's utilization reflects only work
    /// that actually happened. The clock, cells, and metrics are kept
    /// for post-mortem inspection, and the engine accepts new spawns
    /// again — this is the clean abort path after a
    /// [`SimError::Timeout`].
    pub fn abort(&mut self) {
        self.core.queue.clear();
        self.core.waiters.reset();
        for c in &mut self.core.cells {
            c.head = NIL;
            c.tail = NIL;
        }
        let now = self.core.now;
        let recycle = !self.core.observed();
        for (i, slot) in self.processes.iter_mut().enumerate() {
            if slot.state != ProcState::Done {
                slot.state = ProcState::Done;
                slot.proc = None;
                if recycle {
                    self.free_slots.push(i as u32);
                }
            }
            // Close open spans innermost-first so the trace balances.
            while let Some(id) = self.core.span_stacks[i].pop() {
                self.core.record(now, i, id, TraceEventKind::SpanEnd);
            }
        }
        for r in 0..self.core.resources.len() {
            let horizon = self.core.resources[r];
            if horizon > now {
                self.core.metrics.cancel_busy(ResourceId(r), horizon - now);
                self.core.resources[r] = now;
            }
        }
    }

    /// Exclusive access to the metrics registry (e.g. for counters
    /// incremented outside any process step).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Adds `delta` to the named metrics counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.core.metrics.inc(name, delta);
    }

    /// Resolves a span label to a stable id for [`Ctx::span_begin_id`]
    /// ahead of a run (e.g. once per launch batch).
    pub fn span_label_id(&mut self, label: &str) -> SpanLabelId {
        SpanLabelId(self.core.intern(label))
    }

    /// Resolves a counter name to a stable id for [`Ctx::count_id`]
    /// ahead of a run.
    pub fn counter_id(&mut self, name: &str) -> CounterId {
        self.core.metrics.counter_id(name)
    }

    /// Attaches a diagnostic label to a resource.
    pub fn label_resource(&mut self, resource: ResourceId, label: &str) {
        self.core.metrics.set_label(resource, label);
    }

    /// Whether tracing is enabled (see [`Ctx::tracing`]). Guard label
    /// formatting for [`Engine::trace_counter_at`] behind this check.
    pub fn tracing(&self) -> bool {
        self.core.trace.is_some()
    }

    /// Records a named counter sample into the trace at an explicit
    /// instant, from *outside* any process step — the injection point for
    /// drivers that keep their own clock (e.g. a serving scheduler
    /// stamping `serve.*` gauges at its serving-clock time). `at` may be
    /// ahead of the engine clock; the trace stores instants verbatim.
    /// No-op when tracing is disabled.
    pub fn trace_counter_at(&mut self, name: &str, value: u64, at: Time) {
        if self.core.trace.is_some() {
            let id = self.core.intern(name);
            self.core.record(at, 0, id, TraceEventKind::Counter(value));
        }
    }

    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// Total events processed so far (a proxy for simulation effort).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// How many event pushes requested a past instant and were clamped to
    /// the then-current time. Normally zero; a nonzero value flags a cost
    /// model or process emitting events behind the clock.
    pub fn clamped_past_events(&self) -> u64 {
        self.core.clamped_past
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Allocates a fresh cell with value zero.
    pub fn alloc_cell(&mut self) -> CellId {
        self.core.cells.push(CellSlot {
            value: 0,
            head: NIL,
            tail: NIL,
        });
        CellId(self.core.cells.len() - 1)
    }

    /// Current value of a cell.
    pub fn cell(&self, cell: CellId) -> u64 {
        self.core.cells[cell.0].value
    }

    /// Allocates a fresh resource that is free immediately.
    pub fn alloc_resource(&mut self) -> ResourceId {
        self.core.resources.push(Time::ZERO);
        self.core.metrics.add_resource();
        ResourceId(self.core.resources.len() - 1)
    }

    /// Total time a resource has been occupied (for utilization reports).
    pub fn resource_busy(&self, resource: ResourceId) -> Duration {
        self.core.metrics.busy(resource)
    }

    /// Spawns a process; it will first run at the current instant.
    pub fn spawn<P: Process<W> + 'static>(&mut self, proc: P) -> ProcId {
        self.spawn_boxed(Box::new(proc), false, None)
    }

    /// Spawns a *daemon* process: a long-lived server (such as a CPU proxy
    /// thread draining a port-channel FIFO) that is allowed to remain
    /// blocked when the rest of the simulation quiesces. [`Engine::run`]
    /// returns `Ok` with daemons still blocked; they wake again if a later
    /// batch of processes satisfies their condition.
    pub fn spawn_daemon<P: Process<W> + 'static>(&mut self, proc: P) -> ProcId {
        self.spawn_boxed(Box::new(proc), true, None)
    }

    fn spawn_boxed(
        &mut self,
        proc: Box<dyn Process<W>>,
        daemon: bool,
        origin: Option<u32>,
    ) -> ProcId {
        if !self.core.observed() {
            if let Some(i) = self.free_slots.pop() {
                let slot = &mut self.processes[i as usize];
                slot.proc = Some(proc);
                slot.state = ProcState::Scheduled;
                slot.label_id = UNSET_LABEL;
                slot.daemon = daemon;
                slot.gen = slot.gen.wrapping_add(1);
                // `epoch` deliberately persists across incarnations.
                slot.blocked_at = self.core.now;
                let gen = slot.gen;
                self.core.span_stacks[i as usize].clear();
                let id = ProcId(i as usize);
                self.core.push(self.core.now, EventKind::Wake(id, gen));
                return id;
            }
        }
        let id = ProcId(self.processes.len());
        self.core.span_stacks.push(Vec::new());
        if let Some(p) = &mut self.core.prof {
            p.on_spawn(origin);
        }
        self.processes.push(Slot {
            proc: Some(proc),
            state: ProcState::Scheduled,
            label_id: UNSET_LABEL,
            daemon,
            gen: 0,
            epoch: 0,
            blocked_at: self.core.now,
        });
        self.core.push(self.core.now, EventKind::Wake(id, 0));
        id
    }

    /// A blocked process's diagnostic label, resolved lazily: the interned
    /// id if one exists, otherwise formatted from the process itself.
    /// Labels are only materialized on error paths and under observation,
    /// never on plain spawns.
    fn label_of(&self, i: usize) -> String {
        let slot = &self.processes[i];
        if slot.label_id != UNSET_LABEL {
            return self.core.labels.resolve(slot.label_id).to_owned();
        }
        slot.proc
            .as_ref()
            .map_or_else(|| "<finished process>".to_owned(), |p| p.label())
    }

    fn snapshot_blocked(&self, i: usize, cell: CellId, at_least: u64) -> BlockedProcess {
        BlockedProcess {
            proc: ProcId(i),
            label: self.label_of(i),
            cell,
            needed: at_least,
            actual: self.core.cells[cell.0].value,
            span_stack: self.core.span_stacks[i]
                .iter()
                .map(|&id| self.core.labels.resolve(id).to_owned())
                .collect(),
        }
    }

    /// Runs until every process is done and the event queue is empty.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the queue drains while non-daemon
    /// processes are still blocked — i.e. a `wait` that can never be
    /// satisfied — and [`SimError::Timeout`] if a blocking wait outlives
    /// its deadline (an explicit [`Step::WaitCellTimeout`] or the fault
    /// plan's watchdog). After a timeout, call [`Engine::abort`] before
    /// reusing the engine.
    pub fn run(&mut self) -> Result<(), SimError> {
        let mut spawned: Vec<(Box<dyn Process<W>>, bool)> = Vec::new();
        while let Some(ev) = self.core.queue.pop() {
            debug_assert!(ev.time >= self.core.now.as_ps(), "time went backwards");
            if let EventKind::TimeoutCheck(pid, gen, epoch) = ev.payload {
                let slot = &self.processes[pid.0];
                let fired = slot.gen == gen
                    && slot.epoch == epoch
                    && matches!(slot.state, ProcState::Blocked { .. });
                if !fired {
                    // Stale check: the guarded wait completed (or the slot
                    // was recycled). Crucially the clock is NOT advanced,
                    // so an unused deadline leaves no trace on a healthy
                    // run's timings.
                    continue;
                }
                self.core.now = Time::from_ps(ev.time);
                self.core.events_processed += 1;
                let ProcState::Blocked { cell, at_least } = slot.state else {
                    unreachable!("fired timeout check on non-blocked process");
                };
                let waited = self.core.now - slot.blocked_at;
                let mut err = self.snapshot_blocked(pid.0, cell, at_least);
                return Err(SimError::Timeout(TimeoutError {
                    proc: err.proc,
                    label: std::mem::take(&mut err.label),
                    cell,
                    needed: at_least,
                    actual: err.actual,
                    at: self.core.now,
                    waited,
                    span_stack: std::mem::take(&mut err.span_stack),
                }));
            }
            self.core.now = Time::from_ps(ev.time);
            self.core.events_processed += 1;
            match ev.payload {
                EventKind::TimeoutCheck(..) => unreachable!("handled above"),
                EventKind::Wake(pid, gen) => {
                    let slot = &mut self.processes[pid.0];
                    if slot.gen != gen || slot.state != ProcState::Scheduled {
                        continue; // stale wake
                    }
                    let mut proc = slot.proc.take().expect("scheduled process missing body");
                    let label_id = if self.core.trace.is_some() || self.core.prof.is_some() {
                        if slot.label_id == UNSET_LABEL {
                            slot.label_id = self.core.labels.get_or_intern(&proc.label());
                        }
                        slot.label_id
                    } else {
                        UNSET_LABEL
                    };
                    self.core
                        .record(self.core.now, pid.0, label_id, TraceEventKind::StepBegin);
                    if let Some(p) = &mut self.core.prof {
                        p.open_node(pid.0, label_id, self.core.now);
                    }
                    let step = {
                        let mut ctx = Ctx {
                            core: &mut self.core,
                            world: &mut self.world,
                            spawned: &mut spawned,
                            pid,
                        };
                        proc.step(&mut ctx)
                    };
                    // The node that just ran is the spawn origin of any
                    // processes its step created.
                    let origin = self.core.prof.as_ref().and_then(|p| p.open_of(pid.0));
                    let step_end = match step {
                        // The step's busy window covers the yield span.
                        Step::Yield(d) => self.core.now + d,
                        _ => self.core.now,
                    };
                    if let Some(p) = &mut self.core.prof {
                        p.close_node(pid.0, step_end);
                    }
                    let slot = &mut self.processes[pid.0];
                    match step {
                        Step::Yield(d) => {
                            slot.proc = Some(proc);
                            slot.state = ProcState::Scheduled;
                            self.core.push(self.core.now + d, EventKind::Wake(pid, gen));
                            self.core.record(
                                self.core.now + d,
                                pid.0,
                                label_id,
                                TraceEventKind::StepEnd,
                            );
                        }
                        Step::WaitCell { cell, at_least }
                        | Step::WaitCellTimeout { cell, at_least, .. } => {
                            slot.proc = Some(proc);
                            self.core.record(
                                self.core.now,
                                pid.0,
                                label_id,
                                TraceEventKind::StepEnd,
                            );
                            if self.core.cells[cell.0].value >= at_least {
                                slot.state = ProcState::Scheduled;
                                self.core.push(self.core.now, EventKind::Wake(pid, gen));
                            } else {
                                slot.state = ProcState::Blocked { cell, at_least };
                                slot.epoch += 1;
                                slot.blocked_at = self.core.now;
                                let node = self.core.waiters.alloc(at_least, pid.0 as u32);
                                let c = &mut self.core.cells[cell.0];
                                if c.tail == NIL {
                                    c.head = node;
                                } else {
                                    self.core.waiters.nodes[c.tail as usize].next = node;
                                }
                                self.core.cells[cell.0].tail = node;
                                // Effective deadline: the step's own, and/or
                                // the plan watchdog (non-daemons only —
                                // daemons legitimately park on idle FIFOs).
                                let slot = &self.processes[pid.0];
                                let explicit = match step {
                                    Step::WaitCellTimeout { timeout, .. } => Some(timeout),
                                    _ => None,
                                };
                                let watchdog = if slot.daemon {
                                    None
                                } else {
                                    self.core.faults.as_ref().and_then(|p| p.wait_timeout)
                                };
                                let deadline = match (explicit, watchdog) {
                                    (Some(a), Some(b)) => Some(a.min(b)),
                                    (a, b) => a.or(b),
                                };
                                if let Some(d) = deadline {
                                    let epoch = slot.epoch;
                                    self.core.push(
                                        self.core.now + d,
                                        EventKind::TimeoutCheck(pid, gen, epoch),
                                    );
                                }
                            }
                        }
                        Step::Done => {
                            slot.state = ProcState::Done;
                            self.core.record(
                                self.core.now,
                                pid.0,
                                label_id,
                                TraceEventKind::StepEnd,
                            );
                            // proc dropped here; the slot becomes
                            // recyclable unless an observer pins indices.
                            drop(proc);
                            if !self.core.observed() {
                                self.core.span_stacks[pid.0].clear();
                                self.free_slots.push(pid.0 as u32);
                            }
                        }
                    }
                    for (p, daemon) in spawned.drain(..) {
                        self.spawn_boxed(p, daemon, origin);
                    }
                }
                EventKind::CellAdd(cell, delta, issue) => {
                    let c = cell.0;
                    self.core.cells[c].value += delta;
                    let value = self.core.cells[c].value;
                    // Walk the waiter list in block (FIFO) order, waking
                    // and unlinking every satisfied waiter.
                    let mut prev = NIL;
                    let mut cur = self.core.cells[c].head;
                    while cur != NIL {
                        let node = self.core.waiters.nodes[cur as usize];
                        if node.at_least <= value {
                            if prev == NIL {
                                self.core.cells[c].head = node.next;
                            } else {
                                self.core.waiters.nodes[prev as usize].next = node.next;
                            }
                            if self.core.cells[c].tail == cur {
                                self.core.cells[c].tail = prev;
                            }
                            self.core.waiters.release(cur);
                            let pid = node.pid as usize;
                            let slot = &mut self.processes[pid];
                            slot.state = ProcState::Scheduled;
                            let gen = slot.gen;
                            if let Some(p) = &mut self.core.prof {
                                p.on_signal_wake(pid, issue);
                            }
                            self.core
                                .push(self.core.now, EventKind::Wake(ProcId(pid), gen));
                        } else {
                            prev = cur;
                        }
                        cur = node.next;
                    }
                }
            }
        }
        // First pass collects indices only: parked daemons at quiescence are
        // the normal idle state of proxy threads, and snapshotting them
        // (label format + span-stack clone) must not tax the success path.
        let mut blocked_idx = Vec::new();
        let mut daemon_idx = Vec::new();
        for (i, s) in self.processes.iter().enumerate() {
            if matches!(s.state, ProcState::Blocked { .. }) {
                if s.daemon {
                    daemon_idx.push(i);
                } else {
                    blocked_idx.push(i);
                }
            }
        }
        if blocked_idx.is_empty() {
            Ok(())
        } else {
            let snap = |i: usize| {
                let ProcState::Blocked { cell, at_least } = self.processes[i].state else {
                    unreachable!("index collected from a blocked slot");
                };
                self.snapshot_blocked(i, cell, at_least)
            };
            Err(SimError::Deadlock(DeadlockError {
                blocked: blocked_idx.iter().map(|&i| snap(i)).collect(),
                daemons: daemon_idx.iter().map(|&i| snap(i)).collect(),
                at: self.core.now,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::WakeCause;

    /// Two processes: a producer signalling a cell after 100ns, and a
    /// consumer blocked on it.
    #[test]
    fn producer_consumer_wakeup() {
        struct Producer {
            cell: CellId,
            fired: bool,
        }
        impl Process<Vec<&'static str>> for Producer {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<&'static str>>) -> Step {
                if self.fired {
                    ctx.world.push("produced");
                    ctx.cell_add(self.cell, 1);
                    return Step::Done;
                }
                self.fired = true;
                Step::Yield(Duration::from_ns(100.0))
            }
        }
        struct Consumer {
            cell: CellId,
            waited: bool,
        }
        impl Process<Vec<&'static str>> for Consumer {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<&'static str>>) -> Step {
                if self.waited {
                    ctx.world.push("consumed");
                    return Step::Done;
                }
                self.waited = true;
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
        }

        let mut e = Engine::new(Vec::new());
        let cell = e.alloc_cell();
        e.spawn(Consumer {
            cell,
            waited: false,
        });
        e.spawn(Producer { cell, fired: false });
        e.run().unwrap();
        assert_eq!(*e.world(), vec!["produced", "consumed"]);
        assert_eq!(e.now().as_ns(), 100.0);
    }

    #[test]
    fn deadlock_is_reported_with_diagnostics() {
        struct Stuck {
            cell: CellId,
        }
        impl Process<()> for Stuck {
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 7,
                }
            }
            fn label(&self) -> String {
                "stuck-waiter".to_owned()
            }
        }
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn(Stuck { cell });
        let err = e.run().unwrap_err();
        let dead = err.as_deadlock().expect("quiescent stall is a deadlock");
        assert_eq!(dead.blocked.len(), 1);
        assert_eq!(dead.blocked[0].needed, 7);
        assert_eq!(dead.blocked[0].actual, 0);
        assert!(err.to_string().contains("stuck-waiter"));
    }

    #[test]
    fn deadlock_reports_open_span_stack() {
        struct Stuck {
            cell: CellId,
        }
        impl Process<()> for Stuck {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.span_begin("allreduce");
                ctx.span_begin("wait.mem_sem");
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
            fn label(&self) -> String {
                "tb r0 b0".to_owned()
            }
        }
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn(Stuck { cell });
        let err = e.run().unwrap_err();
        let dead = err.as_deadlock().expect("deadlock");
        assert_eq!(
            dead.blocked[0].span_stack,
            vec!["allreduce", "wait.mem_sem"]
        );
        assert!(err.to_string().contains("in allreduce > wait.mem_sem"));
    }

    #[test]
    fn abort_closes_spans_and_flushes_busy_time() {
        struct Stuck {
            cell: CellId,
            res: ResourceId,
        }
        impl Process<()> for Stuck {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.span_begin("allreduce");
                ctx.span_begin("wait.mem_sem");
                // Book the resource far beyond the abort instant; the
                // overhang must be refunded when the run is killed.
                ctx.acquire(self.res, Duration::from_us(1000.0));
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
            fn label(&self) -> String {
                "tb r0 b0".to_owned()
            }
        }
        let mut e = Engine::new(());
        e.enable_tracing();
        let cell = e.alloc_cell();
        let res = e.alloc_resource();
        e.spawn(Stuck { cell, res });
        e.run().unwrap_err();
        e.abort();
        // Post-mortem trace is balanced: every SpanBegin has a SpanEnd.
        let trace = e.take_trace().expect("tracing enabled");
        assert_eq!(trace.unmatched_begins(), 0);
        let json = trace.to_chrome_json();
        assert_eq!(json.matches("\"ph\":\"b\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"e\"").count(), 2);
        // Busy time past the abort instant is refunded: nothing beyond
        // the virtual clock can have actually happened.
        assert!(e.metrics().busy(res) <= e.now() - Time::ZERO);
        // The engine accepts new work after the teardown.
        e.spawn(Stuck { cell, res });
    }

    #[test]
    fn metrics_track_queue_delay_bytes_and_counters() {
        struct Xfer {
            res: ResourceId,
        }
        impl Process<()> for Xfer {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.acquire(self.res, Duration::from_ns(10.0));
                ctx.meter_bytes(self.res, 128);
                ctx.count("ops.puts", 1);
                Step::Done
            }
        }
        let mut e = Engine::new(());
        let res = e.alloc_resource();
        e.label_resource(res, "egress r0");
        e.spawn(Xfer { res });
        e.spawn(Xfer { res });
        e.run().unwrap();
        let s = e.metrics().resource(res);
        assert_eq!(s.label, "egress r0");
        assert_eq!(s.busy.as_ns(), 20.0);
        assert_eq!(s.bytes, 256);
        assert_eq!(s.acquires, 2);
        // The second acquisition at t=0 queued behind the first for 10ns.
        assert_eq!(s.queue_delay.as_ns(), 10.0);
        assert_eq!(e.metrics().counter("ops.puts"), 2);
    }

    /// Two writers contending for one link: the sum of busy time and
    /// queueing delay decomposes exactly to the makespan. This identity
    /// is load-bearing for critical-path blame buckets (`link-busy` +
    /// `link-queue` must tile a contended link's timeline with no gap
    /// and no overlap).
    #[test]
    fn two_writers_one_link_busy_plus_queue_decompose_to_makespan() {
        struct Writer {
            res: ResourceId,
            busy: Duration,
            out: usize,
        }
        impl Process<Vec<Time>> for Writer {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<Time>>) -> Step {
                let done = ctx.acquire(self.res, self.busy);
                ctx.world[self.out] = done;
                Step::Done
            }
        }
        let mut e = Engine::new(vec![Time::ZERO; 2]);
        let res = e.alloc_resource();
        e.spawn(Writer {
            res,
            busy: Duration::from_ns(10.0),
            out: 0,
        });
        e.spawn(Writer {
            res,
            busy: Duration::from_ns(15.0),
            out: 1,
        });
        e.run().unwrap();
        let makespan = e.world()[1] - Time::ZERO;
        assert_eq!(makespan.as_ns(), 25.0);
        let s = e.metrics().resource(res);
        // Both writers requested t=0, so the link never idled: its total
        // busy time IS the makespan, exactly (picosecond equality).
        assert_eq!(s.busy, makespan);
        // The second writer queued for exactly the first one's busy time,
        // and its completion decomposes as queue-delay + own busy.
        assert_eq!(s.queue_delay.as_ns(), 10.0);
        assert_eq!(
            e.world()[1] - Time::ZERO,
            s.queue_delay + Duration::from_ns(15.0)
        );
    }

    #[test]
    fn dep_graph_records_signal_edges_and_acquires() {
        struct Producer {
            cell: CellId,
            res: ResourceId,
        }
        impl Process<()> for Producer {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                // A 10ns transfer followed by a delivery 2ns after it
                // lands, as a wire put would schedule.
                let done = ctx.acquire(self.res, Duration::from_ns(10.0));
                ctx.cell_add_at(self.cell, 1, done + Duration::from_ns(2.0));
                Step::Done
            }
            fn label(&self) -> String {
                "producer".to_owned()
            }
        }
        struct Consumer {
            cell: CellId,
            waited: bool,
        }
        impl Process<()> for Consumer {
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
                if self.waited {
                    return Step::Done;
                }
                self.waited = true;
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
            fn label(&self) -> String {
                "consumer".to_owned()
            }
        }
        let mut e = Engine::new(());
        e.enable_profiling();
        let cell = e.alloc_cell();
        let res = e.alloc_resource();
        e.spawn(Consumer {
            cell,
            waited: false,
        });
        e.spawn(Producer { cell, res });
        e.run().unwrap();
        let g = e.take_dep_graph().expect("profiling enabled");
        assert!(e.take_dep_graph().is_some(), "recorder stays installed");

        // The producer's node carries the acquire.
        let prod = g
            .nodes
            .iter()
            .find(|n| g.label(n) == "producer")
            .expect("producer node");
        assert_eq!(prod.acquires.len(), 1);
        assert_eq!(prod.acquires[0].start.as_ns(), 0.0);
        assert_eq!(prod.acquires[0].done.as_ns(), 10.0);
        assert_eq!(prod.cause, WakeCause::Root);

        // The consumer's woken step carries a Signal edge back to the
        // producer's issue, with the right issue and delivery instants.
        let last = g.last_node().expect("nonempty graph");
        let woken = &g.nodes[last as usize];
        assert_eq!(g.label(woken), "consumer");
        assert_eq!(woken.begin.as_ns(), 12.0);
        let WakeCause::Signal { issue } = woken.cause else {
            panic!("expected Signal cause, got {:?}", woken.cause);
        };
        let iss = g.issues[issue as usize];
        assert_eq!(g.label(&g.nodes[iss.node as usize]), "producer");
        assert_eq!(iss.at.as_ns(), 0.0);
        assert_eq!(iss.deliver_at.as_ns(), 12.0);
        // Edges point backward: indices are a topological order.
        assert!(iss.node < last);
    }

    #[test]
    fn dep_graph_records_spawn_origin_and_seq_edges() {
        struct Parent;
        impl Process<()> for Parent {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.spawn(Child(false));
                Step::Done
            }
            fn label(&self) -> String {
                "parent".to_owned()
            }
        }
        struct Child(bool);
        impl Process<()> for Child {
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
                if self.0 {
                    return Step::Done;
                }
                self.0 = true;
                Step::Yield(Duration::from_ns(5.0))
            }
            fn label(&self) -> String {
                "child".to_owned()
            }
        }
        let mut e = Engine::new(());
        e.enable_profiling();
        e.spawn(Parent);
        e.run().unwrap();
        let g = e.take_dep_graph().unwrap();
        let first_child = g
            .nodes
            .iter()
            .position(|n| g.label(n) == "child")
            .expect("child node");
        let WakeCause::SpawnedBy { node } = g.nodes[first_child].cause else {
            panic!("expected SpawnedBy, got {:?}", g.nodes[first_child].cause);
        };
        assert_eq!(g.label(&g.nodes[node as usize]), "parent");
        // The child's yield window is its node's busy interval, and its
        // second step chains with a Seq edge.
        assert_eq!(g.nodes[first_child].end.as_ns(), 5.0);
        let second = &g.nodes[g.last_node().unwrap() as usize];
        assert_eq!(second.cause, WakeCause::Seq);
        assert_eq!(second.prev, Some(first_child as u32));
        assert_eq!(second.begin.as_ns(), 5.0);
    }

    #[test]
    fn resource_serializes_transfers() {
        // Two processes acquire the same 10ns resource at t=0; completions
        // must be 10ns and 20ns.
        struct Xfer {
            res: ResourceId,
            out: usize,
        }
        impl Process<Vec<Time>> for Xfer {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<Time>>) -> Step {
                let done = ctx.acquire(self.res, Duration::from_ns(10.0));
                ctx.world[self.out] = done;
                Step::Done
            }
        }
        let mut e = Engine::new(vec![Time::ZERO; 2]);
        let res = e.alloc_resource();
        e.spawn(Xfer { res, out: 0 });
        e.spawn(Xfer { res, out: 1 });
        e.run().unwrap();
        assert_eq!(e.world()[0].as_ns(), 10.0);
        assert_eq!(e.world()[1].as_ns(), 20.0);
    }

    #[test]
    fn delayed_cell_add_wakes_at_right_time() {
        struct Waiter {
            cell: CellId,
            started: bool,
        }
        impl Process<Option<Time>> for Waiter {
            fn step(&mut self, ctx: &mut Ctx<'_, Option<Time>>) -> Step {
                if self.started {
                    *ctx.world = Some(ctx.now());
                    return Step::Done;
                }
                self.started = true;
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
        }
        struct Signaller {
            cell: CellId,
        }
        impl Process<Option<Time>> for Signaller {
            fn step(&mut self, ctx: &mut Ctx<'_, Option<Time>>) -> Step {
                let at = ctx.now() + Duration::from_us(3.0);
                ctx.cell_add_at(self.cell, 1, at);
                Step::Done
            }
        }
        let mut e = Engine::new(None);
        let cell = e.alloc_cell();
        e.spawn(Waiter {
            cell,
            started: false,
        });
        e.spawn(Signaller { cell });
        e.run().unwrap();
        assert_eq!(e.world().unwrap().as_us(), 3.0);
    }

    #[test]
    fn wait_on_already_satisfied_cell_continues_immediately() {
        struct W2 {
            cell: CellId,
            phase: u8,
        }
        impl Process<u32> for W2 {
            fn step(&mut self, ctx: &mut Ctx<'_, u32>) -> Step {
                match self.phase {
                    0 => {
                        ctx.cell_add(self.cell, 5);
                        self.phase = 1;
                        Step::Yield(Duration::ZERO)
                    }
                    1 => {
                        self.phase = 2;
                        Step::WaitCell {
                            cell: self.cell,
                            at_least: 5,
                        }
                    }
                    _ => {
                        *ctx.world += 1;
                        Step::Done
                    }
                }
            }
        }
        let mut e = Engine::new(0u32);
        let cell = e.alloc_cell();
        e.spawn(W2 { cell, phase: 0 });
        e.run().unwrap();
        assert_eq!(*e.world(), 1);
        assert_eq!(e.now(), Time::ZERO);
    }

    #[test]
    fn spawned_process_runs() {
        struct Parent;
        impl Process<u32> for Parent {
            fn step(&mut self, ctx: &mut Ctx<'_, u32>) -> Step {
                ctx.spawn(|ctx: &mut Ctx<'_, u32>| {
                    *ctx.world += 10;
                    Step::Done
                });
                Step::Done
            }
        }
        let mut e = Engine::new(0u32);
        e.spawn(Parent);
        e.run().unwrap();
        assert_eq!(*e.world(), 10);
    }

    #[test]
    fn determinism_same_seed_same_order() {
        // Many processes contending on one resource; event order must be
        // identical across runs.
        fn run_once() -> Vec<u64> {
            struct P {
                res: ResourceId,
                idx: u64,
            }
            impl Process<Vec<u64>> for P {
                fn step(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) -> Step {
                    let _ = ctx.acquire(self.res, Duration::from_ns(7.0));
                    ctx.world.push(self.idx);
                    Step::Done
                }
            }
            let mut e = Engine::new(Vec::new());
            let res = e.alloc_resource();
            for idx in 0..64 {
                e.spawn(P { res, idx });
            }
            e.run().unwrap();
            e.into_world()
        }
        assert_eq!(run_once(), run_once());
    }

    struct Parked {
        cell: CellId,
    }
    impl Process<()> for Parked {
        fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
            Step::WaitCell {
                cell: self.cell,
                at_least: 1,
            }
        }
        fn label(&self) -> String {
            "parked".to_owned()
        }
    }

    #[test]
    fn daemon_only_blocked_is_not_a_deadlock() {
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn_daemon(Parked { cell });
        e.run().unwrap();
    }

    #[test]
    fn deadlock_lists_parked_daemons_separately() {
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn_daemon(Parked { cell });
        e.spawn(Parked { cell });
        let err = e.run().unwrap_err();
        let dead = err.as_deadlock().expect("deadlock");
        assert_eq!(dead.blocked.len(), 1, "only the non-daemon counts");
        assert_eq!(dead.daemons.len(), 1);
        let msg = err.to_string();
        assert!(msg.contains("1 blocked process(es)"), "{msg}");
        assert!(msg.contains("daemon process(es) also parked"), "{msg}");
    }

    #[test]
    fn wait_with_deadline_times_out_with_span_stack() {
        struct Hung {
            cell: CellId,
        }
        impl Process<()> for Hung {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                ctx.span_begin("allreduce");
                ctx.span_begin("wait.port_flush");
                Step::WaitCellTimeout {
                    cell: self.cell,
                    at_least: 1,
                    timeout: Duration::from_us(5.0),
                }
            }
            fn label(&self) -> String {
                "tb r0 b0".to_owned()
            }
        }
        // A second process keeps the queue alive past the deadline, so the
        // timeout fires mid-simulation, not at quiescence.
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn(Hung { cell });
        e.spawn(|_: &mut Ctx<'_, ()>| Step::Yield(Duration::from_us(100.0)));
        let err = e.run().unwrap_err();
        let t = err.as_timeout().expect("timeout, not deadlock");
        assert_eq!(t.waited, Duration::from_us(5.0));
        assert_eq!(t.at, Time::from_ps(5_000_000));
        assert_eq!(t.span_stack, vec!["allreduce", "wait.port_flush"]);
        assert!(err.to_string().contains("wait.port_flush"), "{err}");
        // Clean teardown: abort, then the engine accepts fresh work.
        e.abort();
        e.spawn(|ctx: &mut Ctx<'_, ()>| {
            let _ = ctx.now();
            Step::Done
        });
        e.run().unwrap();
    }

    #[test]
    fn satisfied_wait_leaves_no_timeout_trace() {
        // The deadline event outlives the wait; the stale check must not
        // advance the clock past the real completion time.
        struct Quick {
            cell: CellId,
            phase: u8,
        }
        impl Process<()> for Quick {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        ctx.cell_add_at(self.cell, 1, ctx.now() + Duration::from_us(1.0));
                        Step::WaitCellTimeout {
                            cell: self.cell,
                            at_least: 1,
                            timeout: Duration::from_us(50.0),
                        }
                    }
                    _ => Step::Done,
                }
            }
        }
        let mut e = Engine::new(());
        let cell = e.alloc_cell();
        e.spawn(Quick { cell, phase: 0 });
        e.run().unwrap();
        assert_eq!(
            e.now(),
            Time::from_ps(1_000_000),
            "clock stops at completion"
        );
    }

    #[test]
    fn fault_plan_watchdog_converts_hang_to_timeout_but_spares_daemons() {
        let mut e = Engine::new(());
        e.set_fault_plan(FaultPlan::new(1).with_wait_timeout(Duration::from_us(2.0)));
        let cell = e.alloc_cell();
        e.spawn_daemon(Parked { cell });
        // Daemon alone: parked forever, watchdog does not apply.
        e.run().unwrap();
        // Non-daemon: watchdog fires.
        e.spawn(Parked { cell });
        let err = e.run().unwrap_err();
        assert!(err.as_timeout().is_some(), "expected timeout, got {err}");
    }

    #[test]
    fn engine_can_run_multiple_batches_with_persistent_clock() {
        let mut e = Engine::new(());
        e.spawn(|_: &mut Ctx<'_, ()>| Step::Yield(Duration::from_us(1.0)));
        // First batch: the closure yields once then we make it finish by
        // running until the queue drains. The closure above never
        // terminates, so use a bounded one instead.
        let mut e2 = Engine::new(0u32);
        struct Once;
        impl Process<u32> for Once {
            fn step(&mut self, ctx: &mut Ctx<'_, u32>) -> Step {
                *ctx.world += 1;
                Step::Done
            }
        }
        e2.spawn(Once);
        e2.run().unwrap();
        let t1 = e2.now();
        e2.spawn(Once);
        e2.run().unwrap();
        assert_eq!(*e2.world(), 2);
        assert!(e2.now() >= t1);
        drop(e);
    }

    /// Regression (works in release builds too, unlike the old
    /// `debug_assert!`): an event scheduled behind the clock is clamped
    /// to now instead of silently reordering the queue.
    #[test]
    fn past_scheduled_event_is_clamped_to_now() {
        struct LatePoster {
            cell: CellId,
            phase: u8,
        }
        impl Process<Option<Time>> for LatePoster {
            fn step(&mut self, ctx: &mut Ctx<'_, Option<Time>>) -> Step {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Step::Yield(Duration::from_ns(100.0))
                    }
                    _ => {
                        // The clock is at 100ns; request delivery at t=0.
                        ctx.cell_add_at(self.cell, 1, Time::ZERO);
                        Step::Done
                    }
                }
            }
        }
        struct Waiter {
            cell: CellId,
            started: bool,
        }
        impl Process<Option<Time>> for Waiter {
            fn step(&mut self, ctx: &mut Ctx<'_, Option<Time>>) -> Step {
                if self.started {
                    *ctx.world = Some(ctx.now());
                    return Step::Done;
                }
                self.started = true;
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
        }
        let mut e = Engine::new(None);
        let cell = e.alloc_cell();
        e.spawn(Waiter {
            cell,
            started: false,
        });
        e.spawn(LatePoster { cell, phase: 0 });
        e.run().unwrap();
        // The update landed at the clamp instant, not in the past, and
        // the clamp was counted.
        assert_eq!(e.world().unwrap().as_ns(), 100.0);
        assert_eq!(e.clamped_past_events(), 1);
        assert_eq!(e.now().as_ns(), 100.0, "clock never moved backwards");
    }

    /// Waiters blocked on the same cell wake in block (FIFO) order when
    /// one update satisfies them all.
    #[test]
    fn simultaneous_wakes_are_fifo_in_block_order() {
        struct Blocker {
            cell: CellId,
            tag: u8,
            waited: bool,
        }
        impl Process<Vec<u8>> for Blocker {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<u8>>) -> Step {
                if self.waited {
                    ctx.world.push(self.tag);
                    return Step::Done;
                }
                self.waited = true;
                Step::WaitCell {
                    cell: self.cell,
                    at_least: 1,
                }
            }
        }
        struct Kick {
            cell: CellId,
            phase: u8,
        }
        impl Process<Vec<u8>> for Kick {
            fn step(&mut self, ctx: &mut Ctx<'_, Vec<u8>>) -> Step {
                if self.phase == 0 {
                    self.phase = 1;
                    return Step::Yield(Duration::from_ns(10.0));
                }
                ctx.cell_add(self.cell, 1);
                Step::Done
            }
        }
        let mut e = Engine::new(Vec::new());
        let cell = e.alloc_cell();
        for tag in 0..3 {
            e.spawn(Blocker {
                cell,
                tag,
                waited: false,
            });
        }
        e.spawn(Kick { cell, phase: 0 });
        e.run().unwrap();
        assert_eq!(*e.world(), vec![0, 1, 2]);
    }

    /// Finished slots are recycled between run batches when nothing
    /// observes process identity — and never recycled once tracing or
    /// profiling pins slot indices.
    #[test]
    fn slots_recycle_only_when_unobserved() {
        struct Once;
        impl Process<()> for Once {
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
                Step::Done
            }
        }
        let mut e = Engine::new(());
        let a = e.spawn(Once);
        e.run().unwrap();
        let b = e.spawn(Once);
        assert_eq!(a, b, "finished slot is reused");
        e.run().unwrap();
        e.enable_tracing();
        let c = e.spawn(Once);
        assert_ne!(a, c, "tracing pins slot identity");
        e.run().unwrap();
        let d = e.spawn(Once);
        assert_ne!(c, d, "no recycling while tracing stays on");
    }

    /// A timeout check armed by a previous occupant of a recycled slot
    /// must never fire against the new occupant: the generation stamp
    /// (and the persistent epoch) make it stale.
    #[test]
    fn stale_timeout_check_ignores_recycled_slot() {
        struct BriefWait {
            cell: CellId,
            waited: bool,
        }
        impl Process<()> for BriefWait {
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Step {
                if self.waited {
                    return Step::Done;
                }
                self.waited = true;
                // Long deadline; the wait is satisfied at 1us, leaving the
                // check pending in the queue.
                ctx.cell_add_at(self.cell, 1, ctx.now() + Duration::from_us(1.0));
                Step::WaitCellTimeout {
                    cell: self.cell,
                    at_least: 1,
                    timeout: Duration::from_us(50.0),
                }
            }
        }
        let mut e = Engine::new(());
        let wait_cell = e.alloc_cell();
        let never = e.alloc_cell();
        let first = e.spawn(BriefWait {
            cell: wait_cell,
            waited: false,
        });
        e.run().unwrap();
        // Recycle the finished slot for a process that blocks forever.
        let second = e.spawn(Parked { cell: never });
        assert_eq!(first, second, "precondition: the slot was recycled");
        // A long-yield bystander keeps the queue alive past the stale
        // check's deadline; the check must not convert the parked process
        // into a bogus timeout.
        struct SlowBystander(bool);
        impl Process<()> for SlowBystander {
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
                if self.0 {
                    return Step::Done;
                }
                self.0 = true;
                Step::Yield(Duration::from_us(100.0))
            }
        }
        e.spawn(SlowBystander(false));
        let err = e.run().unwrap_err();
        assert!(
            err.as_deadlock().is_some(),
            "expected deadlock at quiescence, got {err}"
        );
    }

    /// Spawning the same process shape many times stores its label once
    /// (single-copy interning), and only when something observes labels.
    #[test]
    fn labels_are_interned_once_and_lazily() {
        struct Labeled;
        impl Process<()> for Labeled {
            fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step {
                Step::Done
            }
            fn label(&self) -> String {
                "worker tb".to_owned()
            }
        }
        let mut e = Engine::new(());
        for _ in 0..100 {
            e.spawn(Labeled);
        }
        e.run().unwrap();
        // Unobserved run: no label was ever formatted or interned.
        assert_eq!(e.core.labels.len(), 0);
        e.enable_tracing();
        for _ in 0..100 {
            e.spawn(Labeled);
        }
        e.run().unwrap();
        let trace = e.take_trace().unwrap();
        // 100 traced spawns of the same shape intern exactly one label.
        assert_eq!(trace.labels, vec!["worker tb".to_owned()]);
    }
}
