//! The NCCL primitive emitter: `send`, `recv`, `copy`, `reduce` and their
//! fused forms (§2.2.1), compiled onto the simulated GPU's instruction
//! stream.
//!
//! Every primitive call starts by synchronizing the channel's static
//! thread group (`prim_sync` — the cost §2.2.2 attributes to NCCL's
//! inflexible grouping), then moves data through the connection's staging
//! FIFO with rendezvous credit flow control. This makes NCCL's structural
//! overheads — blocking, staging copies, conservative synchronization —
//! real simulated work rather than fudge factors.

use hw::{BufferId, DataType, ReduceOp};
use mscclpp::BlockBuilder;

use crate::config::{NcclConfig, Proto};
use crate::conn::Conn;

/// Emits NCCL primitives into one thread block's instruction stream.
#[derive(Debug)]
pub struct Prims<'a, 'b> {
    tb: &'a mut BlockBuilder<'b>,
    cfg: &'a NcclConfig,
    proto: Proto,
    dtype: DataType,
    op: ReduceOp,
}

impl<'a, 'b> Prims<'a, 'b> {
    /// Creates an emitter for one thread block.
    pub fn new(
        tb: &'a mut BlockBuilder<'b>,
        cfg: &'a NcclConfig,
        proto: Proto,
        dtype: DataType,
        op: ReduceOp,
    ) -> Prims<'a, 'b> {
        Prims {
            tb,
            cfg,
            proto,
            dtype,
            op,
        }
    }

    fn group_sync(&mut self) {
        self.tb.compute(self.cfg.prim_sync);
    }

    /// Emits the transfer half of a send into `conn`'s next slot.
    fn put_slot(&mut self, conn: &Conn, src: BufferId, src_off: usize, bytes: usize) {
        let (slot_off, need_credit) = conn.next_send(self.cfg, self.proto);
        if need_credit {
            self.tb.sem_wait(&conn.credit);
        }
        match self.proto {
            Proto::LL => {
                self.tb.raw_put(
                    src,
                    src_off,
                    conn.dst,
                    conn.staging,
                    slot_off,
                    bytes,
                    Proto::LL.wire_factor(),
                    Some(&conn.data),
                );
            }
            Proto::Simple => {
                self.tb.raw_put(
                    src,
                    src_off,
                    conn.dst,
                    conn.staging,
                    slot_off,
                    bytes,
                    1.0,
                    None,
                );
                self.tb.sem_signal(&conn.data);
            }
        }
    }

    /// `send`: copy `bytes` from the user buffer into the peer's staging
    /// FIFO and flag it. Blocks (at run time) on FIFO credit when the
    /// sender has run ahead by the FIFO depth.
    pub fn send(&mut self, conn: &Conn, src: BufferId, src_off: usize, bytes: usize) {
        self.group_sync();
        self.put_slot(conn, src, src_off, bytes);
    }

    /// `recv`: wait for the next staged chunk and return its offset,
    /// crediting the slot back. The data remains in staging; use the
    /// fused forms to consume it without an extra copy.
    pub fn recv_discard(&mut self, conn: &Conn) -> usize {
        self.group_sync();
        self.tb.sem_wait(&conn.data);
        let off = conn.next_recv(self.cfg, self.proto);
        self.tb.sem_signal(&conn.credit);
        off
    }

    /// Fused `recvReduceSend`: receive a chunk, reduce it with the user
    /// input, and forward the partial sum to the next peer (Figure 1's
    /// middle steps).
    pub fn recv_reduce_send(
        &mut self,
        conn_in: &Conn,
        user: BufferId,
        user_off: usize,
        conn_out: &Conn,
        bytes: usize,
    ) {
        self.group_sync();
        self.tb.sem_wait(&conn_in.data);
        let in_off = conn_in.next_recv(self.cfg, self.proto);
        let (out_off, need_credit) = conn_out.next_send(self.cfg, self.proto);
        if need_credit {
            self.tb.sem_wait(&conn_out.credit);
        }
        let notify = match self.proto {
            Proto::LL => Some(&conn_out.data),
            Proto::Simple => None,
        };
        self.tb.raw_reduce_put(
            user,
            user_off,
            conn_in.staging,
            in_off,
            conn_out.dst,
            conn_out.staging,
            out_off,
            bytes,
            self.proto.wire_factor(),
            self.dtype,
            self.op,
            notify,
        );
        if self.proto == Proto::Simple {
            self.tb.sem_signal(&conn_out.data);
        }
        self.tb.sem_signal(&conn_in.credit);
    }

    /// Fused `recvReduceCopy`: receive a chunk, reduce it with the user
    /// input, and write the result to the destination (Figure 1's final
    /// step).
    #[allow(clippy::too_many_arguments)]
    pub fn recv_reduce_copy(
        &mut self,
        conn_in: &Conn,
        user: BufferId,
        user_off: usize,
        dst: BufferId,
        dst_off: usize,
        bytes: usize,
    ) {
        self.group_sync();
        self.tb.sem_wait(&conn_in.data);
        let in_off = conn_in.next_recv(self.cfg, self.proto);
        self.tb.reduce_into(
            user,
            user_off,
            conn_in.staging,
            in_off,
            dst,
            dst_off,
            bytes,
            self.dtype,
            self.op,
        );
        self.tb.sem_signal(&conn_in.credit);
    }

    /// Fused `recvCopy`: receive a chunk and copy it out of staging into
    /// the destination buffer.
    pub fn recv_copy(&mut self, conn_in: &Conn, dst: BufferId, dst_off: usize, bytes: usize) {
        self.group_sync();
        self.tb.sem_wait(&conn_in.data);
        let in_off = conn_in.next_recv(self.cfg, self.proto);
        self.tb.copy(conn_in.staging, in_off, dst, dst_off, bytes);
        self.tb.sem_signal(&conn_in.credit);
    }

    /// Fused `recvCopySend`: receive a chunk, copy it out, and forward it
    /// to the next peer (reading the in-flight data once, from staging).
    ///
    /// The credit for the incoming slot is returned only after the
    /// forward has been issued, since the forward reads the staging slot.
    pub fn recv_copy_send(
        &mut self,
        conn_in: &Conn,
        dst: BufferId,
        dst_off: usize,
        conn_out: &Conn,
        bytes: usize,
    ) {
        self.group_sync();
        self.tb.sem_wait(&conn_in.data);
        let in_off = conn_in.next_recv(self.cfg, self.proto);
        self.tb.copy(conn_in.staging, in_off, dst, dst_off, bytes);
        self.put_slot(conn_out, conn_in.staging, in_off, bytes);
        self.tb.sem_signal(&conn_in.credit);
    }

    /// `reduce`: local element-wise reduction between two buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce_local(
        &mut self,
        a: BufferId,
        a_off: usize,
        b: BufferId,
        b_off: usize,
        dst: BufferId,
        dst_off: usize,
        bytes: usize,
    ) {
        self.group_sync();
        self.tb
            .reduce_into(a, a_off, b, b_off, dst, dst_off, bytes, self.dtype, self.op);
    }

    /// `copy`: local device-to-device copy.
    pub fn copy_local(
        &mut self,
        src: BufferId,
        src_off: usize,
        dst: BufferId,
        dst_off: usize,
        bytes: usize,
    ) {
        self.group_sync();
        self.tb.copy(src, src_off, dst, dst_off, bytes);
    }
}
