//! NCCL connections: one-directional staging FIFOs between rank pairs.
//!
//! An NCCL connection carries data from `src` to `dst` through a staging
//! buffer allocated on the receiver (the "receive buffer" of §2.2.1),
//! organized as a cyclic FIFO of `slots` slots. The sender may run ahead
//! by at most `slots` chunks; beyond that it blocks on *credits* returned
//! by the receiver — the rendezvous behaviour that makes NCCL's `send`
//! self-synchronous.

use std::cell::Cell;
use std::rc::Rc;

use hw::{BufferId, Rank};
use mscclpp::{Semaphore, Setup};

use crate::config::{NcclConfig, Proto};

/// A one-directional NCCL connection (`src` → `dst`).
///
/// Cloning shares the FIFO cursors; clones denote the same connection.
#[derive(Debug, Clone)]
pub struct Conn {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Staging buffer on the receiver (`slots * slot_bytes_simple`).
    pub staging: BufferId,
    /// FIFO depth in slots.
    pub slots: usize,
    /// Data-ready semaphore on the receiver.
    pub data: Semaphore,
    /// Credit semaphore on the sender (receiver returns slots).
    pub credit: Semaphore,
    /// Sends emitted so far (compile-time cursor, shared across clones).
    send_seq: Rc<Cell<usize>>,
    /// Receives emitted so far (compile-time cursor, shared across clones).
    recv_seq: Rc<Cell<usize>>,
}

impl Conn {
    /// Creates a connection from `src` to `dst`, allocating the staging
    /// buffer and semaphores.
    pub fn create(setup: &mut Setup<'_>, cfg: &NcclConfig, src: Rank, dst: Rank) -> Conn {
        let staging_bytes = cfg.slots * cfg.slot_bytes_simple.max(cfg.slot_bytes_ll);
        let staging = setup.alloc(dst, staging_bytes);
        let data = setup.semaphore(dst);
        let credit = setup.semaphore(src);
        Conn {
            src,
            dst,
            staging,
            slots: cfg.slots,
            data,
            credit,
            send_seq: Rc::new(Cell::new(0)),
            recv_seq: Rc::new(Cell::new(0)),
        }
    }

    /// Reserves the next send slot; returns `(byte offset, needs_credit)`.
    ///
    /// `needs_credit` is true once the sender has wrapped the FIFO and
    /// must wait for the receiver to return a slot.
    pub(crate) fn next_send(&self, cfg: &NcclConfig, proto: Proto) -> (usize, bool) {
        let seq = self.send_seq.get();
        self.send_seq.set(seq + 1);
        let slot = seq % self.slots;
        (slot * cfg.slot_bytes(proto), seq >= self.slots)
    }

    /// Reserves the next receive slot; returns its byte offset.
    pub(crate) fn next_recv(&self, cfg: &NcclConfig, proto: Proto) -> usize {
        let seq = self.recv_seq.get();
        self.recv_seq.set(seq + 1);
        (seq % self.slots) * cfg.slot_bytes(proto)
    }

    /// Sends emitted so far (diagnostic).
    pub fn sends(&self) -> usize {
        self.send_seq.get()
    }

    /// Receives emitted so far (diagnostic).
    pub fn recvs(&self) -> usize {
        self.recv_seq.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw::{EnvKind, Machine};
    use sim::Engine;

    #[test]
    fn send_cursor_wraps_and_demands_credit() {
        let mut engine = Engine::new(Machine::new(EnvKind::A100_40G.spec(1)));
        let mut setup = Setup::new(&mut engine);
        let cfg = NcclConfig::nccl();
        let conn = Conn::create(&mut setup, &cfg, Rank(0), Rank(1));
        for i in 0..cfg.slots {
            let (off, credit) = conn.next_send(&cfg, Proto::Simple);
            assert_eq!(off, i * cfg.slot_bytes_simple);
            assert!(!credit, "first {} sends are credit-free", cfg.slots);
        }
        let (off, credit) = conn.next_send(&cfg, Proto::Simple);
        assert_eq!(off, 0, "cursor wraps to slot 0");
        assert!(credit, "wrapped send must wait for credit");
        // Clones share the cursor.
        let c2 = conn.clone();
        let (_, credit) = c2.next_send(&cfg, Proto::Simple);
        assert!(credit);
        assert_eq!(conn.sends(), cfg.slots + 2);
    }

    #[test]
    fn staging_lives_on_receiver() {
        let mut engine = Engine::new(Machine::new(EnvKind::A100_40G.spec(1)));
        let mut setup = Setup::new(&mut engine);
        let cfg = NcclConfig::nccl();
        let conn = Conn::create(&mut setup, &cfg, Rank(2), Rank(5));
        assert_eq!(engine.world().pool().rank_of(conn.staging), Rank(5));
    }
}
