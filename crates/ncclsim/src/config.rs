//! NCCL stack configuration: protocols, algorithms, and tuning.

use sim::Duration;

/// NCCL wire protocol (§2.2.2 context).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum Proto {
    /// The `Simple` protocol: full-bandwidth chunks synchronized by
    /// flag writes after a memory fence.
    Simple,
    /// The `LL` protocol: 4-byte flags interleaved with 4-byte data words
    /// (half wire efficiency, no fence latency).
    LL,
}

impl Proto {
    /// Wire bytes per payload byte.
    pub fn wire_factor(self) -> f64 {
        match self {
            Proto::Simple => 1.0,
            Proto::LL => 2.0,
        }
    }
}

/// NCCL collective algorithm.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Ring: 2(N−1) pipelined steps for AllReduce.
    Ring,
    /// Tree: reduce up / broadcast down a binary tree; lower latency than
    /// ring for small messages on multi-node clusters.
    Tree,
}

/// Tunable constants of the NCCL baseline stack.
///
/// The structural costs that the MSCCL++ paper identifies — blocking
/// self-synchronous primitives, staging-buffer copies, conservative
/// double synchronization — are *not* constants here: they are emitted as
/// real simulated work by the compiler in [`crate::NcclComm`]. The values
/// below only size that structure.
#[derive(Debug, Clone, PartialEq)]
pub struct NcclConfig {
    /// Cost of one primitive call's thread-group synchronization: NCCL
    /// statically groups 128–640 threads per channel and barriers them at
    /// every `send`/`recv`/`copy`/`reduce` (§2.2.2).
    pub prim_sync: Duration,
    /// Staging FIFO slot size for the Simple protocol (NCCL's buffer is
    /// split into `slots` chunks of this size).
    pub slot_bytes_simple: usize,
    /// Staging FIFO slot size for the LL protocol.
    pub slot_bytes_ll: usize,
    /// Number of FIFO slots per connection (NCCL `NCCL_STEPS` = 8).
    pub slots: usize,
    /// Maximum channels (parallel rings/trees, one thread block each).
    pub max_channels: usize,
    /// Registers per thread of the NCCL ring kernels (§3.2.3: 94).
    pub regs_per_thread: u32,
}

impl NcclConfig {
    /// NCCL 2.26-like defaults.
    pub fn nccl() -> NcclConfig {
        NcclConfig {
            prim_sync: Duration::from_ns(300.0),
            slot_bytes_simple: 512 << 10,
            slot_bytes_ll: 32 << 10,
            slots: 8,
            max_channels: 4,
            regs_per_thread: 94,
        }
    }

    /// RCCL defaults (same architecture; §2.2: "RCCL is designed based on
    /// NCCL and shares the same limitations").
    pub fn rccl() -> NcclConfig {
        NcclConfig::nccl()
    }

    /// Slot size for a protocol.
    pub fn slot_bytes(&self, proto: Proto) -> usize {
        match proto {
            Proto::Simple => self.slot_bytes_simple,
            Proto::LL => self.slot_bytes_ll,
        }
    }
}

impl Default for NcclConfig {
    fn default() -> NcclConfig {
        NcclConfig::nccl()
    }
}

/// One tuner decision: algorithm, protocol, and channel count.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct Choice {
    /// Collective algorithm.
    pub algo: Algo,
    /// Wire protocol.
    pub proto: Proto,
    /// Number of channels (thread blocks / parallel rings).
    pub channels: usize,
}

/// NCCL's size-based tuner: picks algorithm, protocol, and channel count
/// for a message size, mirroring NCCL's internal latency/bandwidth model.
pub fn tune(msg_bytes: usize, nodes: usize) -> Choice {
    let proto = if msg_bytes <= 256 << 10 {
        Proto::LL
    } else {
        Proto::Simple
    };
    let algo = if nodes > 1 && msg_bytes <= 8 << 20 {
        Algo::Tree
    } else {
        Algo::Ring
    };
    let channels = if msg_bytes <= 64 << 10 {
        1
    } else if msg_bytes <= 4 << 20 {
        2
    } else {
        4
    };
    Choice {
        algo,
        proto,
        channels,
    }
}

/// Candidate tuner choices for exhaustive per-point tuning, mirroring the
/// paper's methodology of fine-tuning the baselines' environment
/// variables per message size (§5.1).
pub fn tuning_candidates(nodes: usize) -> Vec<Choice> {
    let mut out = Vec::new();
    for proto in [Proto::LL, Proto::Simple] {
        for channels in [1, 2, 4] {
            out.push(Choice {
                algo: Algo::Ring,
                proto,
                channels,
            });
            if nodes > 1 {
                out.push(Choice {
                    algo: Algo::Tree,
                    proto,
                    channels,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_uses_ll_for_small_and_simple_for_large() {
        assert_eq!(tune(1 << 10, 1).proto, Proto::LL);
        assert_eq!(tune(64 << 20, 1).proto, Proto::Simple);
    }

    #[test]
    fn tuner_uses_tree_only_multinode_small() {
        assert_eq!(tune(1 << 10, 1).algo, Algo::Ring);
        assert_eq!(tune(1 << 10, 4).algo, Algo::Tree);
        assert_eq!(tune(256 << 20, 4).algo, Algo::Ring);
    }

    #[test]
    fn candidates_cover_both_protocols() {
        let c = tuning_candidates(2);
        assert!(c
            .iter()
            .any(|x| x.proto == Proto::LL && x.algo == Algo::Tree));
        assert!(c
            .iter()
            .any(|x| x.proto == Proto::Simple && x.algo == Algo::Ring));
        let single = tuning_candidates(1);
        assert!(single.iter().all(|x| x.algo == Algo::Ring));
    }

    #[test]
    fn ll_doubles_wire_bytes() {
        assert_eq!(Proto::LL.wire_factor(), 2.0);
        assert_eq!(Proto::Simple.wire_factor(), 1.0);
    }
}
