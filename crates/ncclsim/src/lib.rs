//! `ncclsim`: a from-scratch reproduction of the NCCL/RCCL baseline
//! architecture (§2.2 of the MSCCL++ paper) on the simulated cluster.
//!
//! NCCL's GPU kernels are built from four self-synchronous primitives —
//! `send`, `recv`, `copy`, `reduce` (plus fused forms) — that move data
//! through per-connection staging FIFOs with rendezvous credit flow
//! control, synchronizing a static group of threads at every call. This
//! crate reproduces that structure faithfully:
//!
//! * [`Conn`]: staging buffer on the receiver, cyclic slots, data/credit
//!   semaphores (the send/receive buffers of §2.2.1);
//! * [`Prims`]: the primitive emitter, charging the per-call group
//!   synchronization and staging copies (§2.2.2's "wasted GPU cycles" and
//!   "inflexible synchronization" are real simulated work here);
//! * [`NcclComm`]: ring and node-aware tree collectives (AllReduce,
//!   AllGather, ReduceScatter, Broadcast) with LL/Simple protocols and
//!   NCCL's size-based tuner.
//!
//! RCCL is this same stack on the MI300x topology ([`NcclConfig::rccl`]),
//! reflecting the paper's observation that RCCL shares NCCL's design and
//! limitations.
//!
//! # Example
//!
//! ```
//! use hw::{DataType, EnvKind, Machine, Rank, ReduceOp};
//! use mscclpp::Setup;
//! use ncclsim::{tune, NcclComm, NcclConfig};
//! use sim::Engine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut engine = Engine::new(Machine::new(EnvKind::A100_40G.spec(1)));
//! let mut setup = Setup::new(&mut engine);
//! let comm = NcclComm::new(&mut setup, NcclConfig::nccl());
//!
//! let count = 1024usize;
//! let bufs = setup.alloc_all(count * 4);
//! for r in 0..8 {
//!     engine.world_mut().pool_mut().fill_with(bufs[r], DataType::F32, |_| 1.0);
//! }
//! let t = comm.all_reduce(
//!     &mut engine, &bufs, &bufs, count, DataType::F32, ReduceOp::Sum,
//!     tune(count * 4, 1),
//! )?;
//! assert_eq!(engine.world().pool().to_f32_vec(bufs[0], DataType::F32)[0], 8.0);
//! println!("1 KB AllReduce took {}", t.elapsed());
//! # Ok(())
//! # }
//! ```

mod comm;
mod config;
mod conn;
mod prims;

pub use comm::NcclComm;
pub use config::{tune, tuning_candidates, Algo, Choice, NcclConfig, Proto};
pub use conn::Conn;
pub use prims::Prims;
