//! The NCCL communicator: connection setup and collective kernels
//! (ring and tree), mirroring the architecture of §2.2.1.

use hw::{BufferId, DataType, Machine, Rank, ReduceOp, Topology};
use mscclpp::{run_kernels, Kernel, KernelBuilder, KernelTiming, Overheads, Result, Setup};
use sim::Engine;

use crate::config::{Algo, Choice, NcclConfig, Proto};
use crate::conn::Conn;
use crate::prims::Prims;

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Splits `total` into `parts` nearly-equal ranges; returns the
/// `(start, len)` of range `idx`.
pub(crate) fn split_range(total: usize, parts: usize, idx: usize) -> (usize, usize) {
    let base = total / parts;
    let rem = total % parts;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    (start, len)
}

/// Per-channel connection sets.
///
/// Each channel uses a different ring ordering (node-major with the
/// local order rotated by the channel index), so that the rings of
/// different channels cross nodes through different GPUs — and therefore
/// different NICs — as NCCL's topology search does. The tree's
/// node-leader role rotates the same way.
#[derive(Debug, Clone)]
struct Channel {
    /// Ring sequence: `order[p]` is the rank at ring position `p`.
    order: Vec<Rank>,
    /// Inverse of `order`: `pos[r]` is rank r's ring position.
    pos: Vec<usize>,
    /// `ring_next[p]` carries `order[p]` → `order[(p+1) % N]`.
    ring_next: Vec<Conn>,
    /// Tree: `tree_up[r]` carries r → parent(r), `None` at the root.
    tree_up: Vec<Option<Conn>>,
    /// Tree: `tree_down[r]` carries parent(r) → r, `None` at the root.
    tree_down: Vec<Option<Conn>>,
    /// Per-rank scratch used by tree interior nodes (one Simple slot).
    scratch: Vec<BufferId>,
}

/// An NCCL communicator over all ranks of the machine.
///
/// Owns the staging-FIFO connections for the ring and tree topologies
/// across `max_channels` channels and compiles collective kernels over
/// them. The tree is node-aware, as in NCCL: GPUs chain within a node
/// and node leaders form a binary tree across nodes.
#[derive(Debug)]
pub struct NcclComm {
    cfg: NcclConfig,
    topo: Topology,
    channels: Vec<Channel>,
    ov: Overheads,
    verify: std::cell::Cell<bool>,
}

/// Parent of `rank` in the node-aware tree for a channel whose local
/// chain is rotated by `shift` (the node leader is local index `shift`).
fn tree_parent(topo: Topology, rank: Rank, shift: usize) -> Option<Rank> {
    let g = topo.gpus_per_node();
    let node = topo.node_of(rank);
    let local = (topo.local_index(rank) + g - shift % g) % g;
    if local > 0 {
        Some(topo.rank_at(node, (local - 1 + shift) % g))
    } else if node > 0 {
        Some(topo.rank_at((node - 1) / 2, shift % g))
    } else {
        None
    }
}

/// Children of `rank` in the shifted node-aware tree.
fn tree_children(topo: Topology, rank: Rank, shift: usize) -> Vec<Rank> {
    let g = topo.gpus_per_node();
    let node = topo.node_of(rank);
    let local = (topo.local_index(rank) + g - shift % g) % g;
    let mut out = Vec::new();
    if local + 1 < g {
        out.push(topo.rank_at(node, (local + 1 + shift) % g));
    }
    if local == 0 {
        for c in [2 * node + 1, 2 * node + 2] {
            if c < topo.nodes() {
                out.push(topo.rank_at(c, shift % g));
            }
        }
    }
    out
}

impl NcclComm {
    /// Builds a communicator, allocating staging buffers and semaphores
    /// for every ring and tree edge on every channel.
    pub fn new(setup: &mut Setup<'_>, cfg: NcclConfig) -> NcclComm {
        let topo = setup.topology();
        let n = topo.world_size();
        let ov = setup.overheads().clone();
        let g = topo.gpus_per_node();
        let mut channels = Vec::with_capacity(cfg.max_channels);
        for c in 0..cfg.max_channels {
            // Node-major ring; each channel permutes the local order with
            // a different (rotation, stride) so that (a) rings of
            // different channels cross nodes through different GPUs —
            // and therefore different NICs — and (b) on peer-to-peer
            // meshes, alternating strides walk disjoint link sets, as
            // NCCL/RCCL's topology search does.
            let stride = if c % 2 == 0 {
                1
            } else {
                // Smallest stride > 1 coprime to the node size.
                (2..g).find(|s| gcd(*s, g) == 1).unwrap_or(1)
            };
            let order: Vec<Rank> = (0..topo.nodes())
                .flat_map(|node| (0..g).map(move |k| topo.rank_at(node, (c + k * stride) % g)))
                .collect();
            let mut pos = vec![0usize; n];
            for (p, &r) in order.iter().enumerate() {
                pos[r.0] = p;
            }
            let ring_next: Vec<Conn> = (0..n)
                .map(|p| Conn::create(setup, &cfg, order[p], order[(p + 1) % n]))
                .collect();
            let mut tree_up = Vec::with_capacity(n);
            let mut tree_down = Vec::with_capacity(n);
            for r in 0..n {
                match tree_parent(topo, Rank(r), c) {
                    Some(p) => {
                        tree_up.push(Some(Conn::create(setup, &cfg, Rank(r), p)));
                        tree_down.push(Some(Conn::create(setup, &cfg, p, Rank(r))));
                    }
                    None => {
                        tree_up.push(None);
                        tree_down.push(None);
                    }
                }
            }
            let scratch = (0..n)
                .map(|r| setup.alloc(Rank(r), cfg.slot_bytes_simple))
                .collect();
            channels.push(Channel {
                order,
                pos,
                ring_next,
                tree_up,
                tree_down,
                scratch,
            });
        }
        NcclComm {
            cfg,
            topo,
            channels,
            ov,
            verify: std::cell::Cell::new(true),
        }
    }

    /// The stack configuration.
    pub fn config(&self) -> &NcclConfig {
        &self.cfg
    }

    /// Enables or disables plan verification (on by default).
    pub fn set_verify(&self, on: bool) {
        self.verify.set(on);
    }

    /// Runs the static verifier — transport checks plus the semantic
    /// dataflow pass against `spec` — over the first kernel batch
    /// launched on this communicator. Later launches reuse the staging
    /// FIFOs with banked credits (each launch leaves `slots` spare
    /// credits per connection), so fresh-cell happens-before analysis is
    /// only sound for the first one.
    fn maybe_verify(
        &self,
        engine: &Engine<Machine>,
        kernels: &[Kernel],
        spec: &commverify::CollectiveSpec,
    ) -> Result<()> {
        if !self.verify.replace(false) {
            return Ok(());
        }
        let checks = commverify::Checks {
            semantics: true,
            ..commverify::Checks::transport()
        };
        commverify::verify_collective(kernels, engine.world().pool(), &checks, spec)?;
        Ok(())
    }

    /// Spec members for a full-world collective: rank `r` contributes
    /// `input[r]` and receives into `output[r]`.
    fn spec_members(&self, input: &[BufferId], output: &[BufferId]) -> Vec<commverify::SpecMember> {
        (0..self.topo.world_size())
            .map(|r| commverify::SpecMember {
                rank: Rank(r),
                input: input[r],
                output: output[r],
            })
            .collect()
    }

    /// Compiles ring-AllReduce kernels (Figure 1's ReduceScatter followed
    /// by an AllGather around the same ring), one thread block per
    /// channel.
    #[allow(clippy::too_many_arguments)]
    fn ring_all_reduce(
        &self,
        input: &[BufferId],
        output: &[BufferId],
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        proto: Proto,
        nch: usize,
    ) -> Vec<Kernel> {
        let n = self.topo.world_size();
        let es = dtype.size();
        let slot_elems = self.cfg.slot_bytes(proto) / es;
        let mut builders: Vec<KernelBuilder> =
            (0..n).map(|r| kernel_builder(Rank(r), &self.cfg)).collect();
        for c in 0..nch {
            let (stripe_start, stripe_len) = split_range(count, nch, c);
            // Per-rank chunk within the stripe.
            let chunk = |i: usize| split_range(stripe_len, n, i);
            let max_chunk = (0..n).map(|i| chunk(i).1).max().unwrap_or(0);
            let nbatches = max_chunk.div_ceil(slot_elems).max(1);
            for r in 0..n {
                let mut kb = std::mem::replace(&mut builders[r], KernelBuilder::new(Rank(r)));
                {
                    let mut tb = kb.block(c);
                    let mut p = Prims::new(&mut tb, &self.cfg, proto, dtype, op);
                    let ch = &self.channels[c];
                    let pos = ch.pos[r];
                    let conn_out = &ch.ring_next[pos];
                    let conn_in = &ch.ring_next[(pos + n - 1) % n];
                    // Slice of chunk i covered by batch b, in bytes
                    // relative to the stripe start. Chunks are indexed by
                    // ring position (chunk identity is arbitrary for
                    // AllReduce as long as it is globally consistent).
                    let slice = |i: usize, b: usize| -> (usize, usize) {
                        let (cs, cl) = chunk(i);
                        let lo = (b * slot_elems).min(cl);
                        let hi = ((b + 1) * slot_elems).min(cl);
                        ((stripe_start + cs + lo) * es, (hi - lo) * es)
                    };
                    for b in 0..nbatches {
                        // ReduceScatter phase: N-1 steps.
                        let (off0, len0) = slice(pos, b);
                        p.send(conn_out, input[r], off0, len0);
                        for k in 1..n - 1 {
                            let ci = (pos + n - k) % n;
                            let (off, len) = slice(ci, b);
                            p.recv_reduce_send(conn_in, input[r], off, conn_out, len);
                        }
                        // Final step: position completes chunk (pos+1) % N.
                        let done = (pos + 1) % n;
                        let (off, len) = slice(done, b);
                        p.recv_reduce_copy(conn_in, input[r], off, output[r], off, len);
                        // AllGather phase: N-1 steps forwarding completed
                        // chunks around the ring.
                        let (soff, slen) = slice(done, b);
                        p.send(conn_out, output[r], soff, slen);
                        for k in 0..n - 2 {
                            let ci = (pos + n - k) % n;
                            let (off, len) = slice(ci, b);
                            p.recv_copy_send(conn_in, output[r], off, conn_out, len);
                        }
                        let ci = (pos + 2) % n;
                        let (off, len) = slice(ci, b);
                        p.recv_copy(conn_in, output[r], off, len);
                    }
                }
                builders[r] = kb;
            }
        }
        builders.into_iter().map(KernelBuilder::build).collect()
    }

    /// Compiles tree-AllReduce kernels: reduce up the node-aware tree,
    /// then broadcast back down, pipelined in FIFO-slot batches.
    #[allow(clippy::too_many_arguments)]
    fn tree_all_reduce(
        &self,
        input: &[BufferId],
        output: &[BufferId],
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        proto: Proto,
        nch: usize,
    ) -> Vec<Kernel> {
        let n = self.topo.world_size();
        let es = dtype.size();
        let slot_elems = self.cfg.slot_bytes(proto) / es;
        let mut builders: Vec<KernelBuilder> =
            (0..n).map(|r| kernel_builder(Rank(r), &self.cfg)).collect();
        for c in 0..nch {
            let (stripe_start, stripe_len) = split_range(count, nch, c);
            let nbatches = stripe_len.div_ceil(slot_elems).max(1);
            let ch = &self.channels[c];
            for r in 0..n {
                let mut kb = std::mem::replace(&mut builders[r], KernelBuilder::new(Rank(r)));
                {
                    let mut tb = kb.block(c);
                    let mut p = Prims::new(&mut tb, &self.cfg, proto, dtype, op);
                    let children = tree_children(self.topo, Rank(r), c);
                    let up = ch.tree_up[r].as_ref();
                    let down = ch.tree_down[r].as_ref();
                    for b in 0..nbatches {
                        let lo = (b * slot_elems).min(stripe_len);
                        let hi = ((b + 1) * slot_elems).min(stripe_len);
                        let off = (stripe_start + lo) * es;
                        let len = (hi - lo) * es;
                        // Reduce phase.
                        match (children.is_empty(), up) {
                            (true, Some(up)) => {
                                // Leaf: push my data up.
                                p.send(up, input[r], off, len);
                            }
                            (false, up) => {
                                // Interior or root: fold my input with the
                                // first child, then remaining children.
                                let acc = ch.scratch[r];
                                let acc_off = 0;
                                let first = ch.tree_up[children[0].0].as_ref().unwrap();
                                let (dst, dst_off) = if up.is_none() && children.len() == 1 {
                                    (output[r], off)
                                } else {
                                    (acc, acc_off)
                                };
                                p.recv_reduce_copy(first, input[r], off, dst, dst_off, len);
                                for (i, &child) in children.iter().enumerate().skip(1) {
                                    let conn = ch.tree_up[child.0].as_ref().unwrap();
                                    let last = i == children.len() - 1;
                                    let (d, doff) = if up.is_none() && last {
                                        (output[r], off)
                                    } else {
                                        (acc, acc_off)
                                    };
                                    p.recv_reduce_copy(conn, dst, dst_off, d, doff, len);
                                }
                                if let Some(up) = up {
                                    p.send(up, acc, acc_off, len);
                                }
                            }
                            (true, None) => {
                                // Single-rank world: allreduce is a copy.
                                p.copy_local(input[r], off, output[r], off, len);
                            }
                        }
                        // Broadcast phase.
                        if let Some(down) = down {
                            if children.is_empty() {
                                p.recv_copy(down, output[r], off, len);
                            } else {
                                let first_child_down =
                                    ch.tree_down[children[0].0].as_ref().unwrap();
                                p.recv_copy_send(down, output[r], off, first_child_down, len);
                                for &child in children.iter().skip(1) {
                                    let conn = ch.tree_down[child.0].as_ref().unwrap();
                                    p.send(conn, output[r], off, len);
                                }
                            }
                        } else {
                            for &child in &children {
                                let conn = ch.tree_down[child.0].as_ref().unwrap();
                                p.send(conn, output[r], off, len);
                            }
                        }
                    }
                }
                builders[r] = kb;
            }
        }
        builders.into_iter().map(KernelBuilder::build).collect()
    }

    /// Compiles ring-AllGather kernels: each rank contributes `count`
    /// elements (its own chunk of `input`), and every rank ends with all
    /// `N * count` elements in `output`.
    fn ring_all_gather(
        &self,
        input: &[BufferId],
        output: &[BufferId],
        count: usize,
        dtype: DataType,
        proto: Proto,
        nch: usize,
    ) -> Vec<Kernel> {
        let n = self.topo.world_size();
        let es = dtype.size();
        let slot_elems = self.cfg.slot_bytes(proto) / es;
        let mut builders: Vec<KernelBuilder> =
            (0..n).map(|r| kernel_builder(Rank(r), &self.cfg)).collect();
        for c in 0..nch {
            let (stripe_start, stripe_len) = split_range(count, nch, c);
            let nbatches = stripe_len.div_ceil(slot_elems).max(1);
            for r in 0..n {
                let mut kb = std::mem::replace(&mut builders[r], KernelBuilder::new(Rank(r)));
                {
                    let mut tb = kb.block(c);
                    // AllGather carries no reduction; op is irrelevant.
                    let mut p = Prims::new(&mut tb, &self.cfg, proto, dtype, ReduceOp::Sum);
                    let ch = &self.channels[c];
                    let pos = ch.pos[r];
                    let conn_out = &ch.ring_next[pos];
                    let conn_in = &ch.ring_next[(pos + n - 1) % n];
                    for b in 0..nbatches {
                        let lo = (b * slot_elems).min(stripe_len);
                        let hi = ((b + 1) * slot_elems).min(stripe_len);
                        let boff = (stripe_start + lo) * es;
                        let blen = (hi - lo) * es;
                        // Own chunk into place, then N-1 forwarding steps.
                        p.copy_local(input[r], boff, output[r], r * count * es + boff, blen);
                        p.send(conn_out, input[r], boff, blen);
                        for k in 0..n - 2 {
                            let src = ch.order[(pos + n - 1 - k) % n].0;
                            p.recv_copy_send(
                                conn_in,
                                output[r],
                                src * count * es + boff,
                                conn_out,
                                blen,
                            );
                        }
                        let src = ch.order[(pos + 1) % n].0;
                        p.recv_copy(conn_in, output[r], src * count * es + boff, blen);
                    }
                }
                builders[r] = kb;
            }
        }
        builders.into_iter().map(KernelBuilder::build).collect()
    }

    /// Compiles ring-ReduceScatter kernels (Figure 1): each rank provides
    /// `count * N` elements and receives its reduced chunk of `count`
    /// elements in `output`.
    #[allow(clippy::too_many_arguments)]
    fn ring_reduce_scatter(
        &self,
        input: &[BufferId],
        output: &[BufferId],
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        proto: Proto,
        nch: usize,
    ) -> Vec<Kernel> {
        let n = self.topo.world_size();
        let es = dtype.size();
        let slot_elems = self.cfg.slot_bytes(proto) / es;
        let mut builders: Vec<KernelBuilder> =
            (0..n).map(|r| kernel_builder(Rank(r), &self.cfg)).collect();
        for c in 0..nch {
            let (stripe_start, stripe_len) = split_range(count, nch, c);
            let nbatches = stripe_len.div_ceil(slot_elems).max(1);
            for r in 0..n {
                let mut kb = std::mem::replace(&mut builders[r], KernelBuilder::new(Rank(r)));
                {
                    let mut tb = kb.block(c);
                    let mut p = Prims::new(&mut tb, &self.cfg, proto, dtype, op);
                    let ch = &self.channels[c];
                    let pos = ch.pos[r];
                    let conn_out = &ch.ring_next[pos];
                    let conn_in = &ch.ring_next[(pos + n - 1) % n];
                    for b in 0..nbatches {
                        let lo = (b * slot_elems).min(stripe_len);
                        let hi = ((b + 1) * slot_elems).min(stripe_len);
                        let boff = (stripe_start + lo) * es;
                        let blen = (hi - lo) * es;
                        let chunk_off = |i: usize| i * count * es + boff;
                        // The position starts by sending its predecessor's
                        // chunk; each chunk travels N-1 hops, so after the
                        // final step rank r completes its own chunk r.
                        let c0 = ch.order[(pos + n - 1) % n].0;
                        p.send(conn_out, input[r], chunk_off(c0), blen);
                        for k in 1..n - 1 {
                            let ci = ch.order[(pos + n - 1 - k) % n].0;
                            p.recv_reduce_send(conn_in, input[r], chunk_off(ci), conn_out, blen);
                        }
                        p.recv_reduce_copy(conn_in, input[r], chunk_off(r), output[r], boff, blen);
                    }
                }
                builders[r] = kb;
            }
        }
        builders.into_iter().map(KernelBuilder::build).collect()
    }

    /// Compiles ring (chain) Broadcast kernels from `root`.
    #[allow(clippy::too_many_arguments)]
    fn ring_broadcast(
        &self,
        input: &[BufferId],
        output: &[BufferId],
        count: usize,
        dtype: DataType,
        root: Rank,
        proto: Proto,
        nch: usize,
    ) -> Vec<Kernel> {
        let n = self.topo.world_size();
        let es = dtype.size();
        let slot_elems = self.cfg.slot_bytes(proto) / es;
        let mut builders: Vec<KernelBuilder> =
            (0..n).map(|r| kernel_builder(Rank(r), &self.cfg)).collect();
        for c in 0..nch {
            let (stripe_start, stripe_len) = split_range(count, nch, c);
            let nbatches = stripe_len.div_ceil(slot_elems).max(1);
            for r in 0..n {
                let mut kb = std::mem::replace(&mut builders[r], KernelBuilder::new(Rank(r)));
                {
                    let mut tb = kb.block(c);
                    let mut p = Prims::new(&mut tb, &self.cfg, proto, dtype, ReduceOp::Sum);
                    let ch = &self.channels[c];
                    let rpos = ch.pos[r];
                    let conn_out = &ch.ring_next[rpos];
                    let conn_in = &ch.ring_next[(rpos + n - 1) % n];
                    // Position along the chain starting at the root.
                    let pos = (rpos + n - ch.pos[root.0]) % n;
                    for b in 0..nbatches {
                        let lo = (b * slot_elems).min(stripe_len);
                        let hi = ((b + 1) * slot_elems).min(stripe_len);
                        let boff = (stripe_start + lo) * es;
                        let blen = (hi - lo) * es;
                        if pos == 0 {
                            p.copy_local(input[r], boff, output[r], boff, blen);
                            if n > 1 {
                                p.send(conn_out, input[r], boff, blen);
                            }
                        } else if pos == n - 1 {
                            p.recv_copy(conn_in, output[r], boff, blen);
                        } else {
                            p.recv_copy_send(conn_in, output[r], boff, conn_out, blen);
                        }
                    }
                }
                builders[r] = kb;
            }
        }
        builders.into_iter().map(KernelBuilder::build).collect()
    }

    /// AllReduce over all ranks with an explicit tuner [`Choice`],
    /// returning the batch timing. Data is really reduced; callers can
    /// verify `output` afterwards.
    ///
    /// # Errors
    ///
    /// Propagates kernel deadlocks (which would indicate a compiler bug).
    #[allow(clippy::too_many_arguments)]
    pub fn all_reduce(
        &self,
        engine: &mut Engine<Machine>,
        input: &[BufferId],
        output: &[BufferId],
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        choice: Choice,
    ) -> Result<KernelTiming> {
        let nch = choice.channels.min(self.cfg.max_channels);
        let kernels = match choice.algo {
            Algo::Ring => self.ring_all_reduce(input, output, count, dtype, op, choice.proto, nch),
            Algo::Tree => self.tree_all_reduce(input, output, count, dtype, op, choice.proto, nch),
        };
        mscclpp::record_launch_mix(engine, "nccl", &kernels);
        let spec = commverify::CollectiveSpec::all_reduce(
            self.spec_members(input, output),
            count * dtype.size(),
        );
        self.maybe_verify(engine, &kernels, &spec)?;
        run_kernels(engine, &kernels, &self.ov)
    }

    /// AllGather with an explicit tuner [`Choice`] (always ring).
    ///
    /// # Errors
    ///
    /// Propagates kernel deadlocks.
    #[allow(clippy::too_many_arguments)]
    pub fn all_gather(
        &self,
        engine: &mut Engine<Machine>,
        input: &[BufferId],
        output: &[BufferId],
        count: usize,
        dtype: DataType,
        choice: Choice,
    ) -> Result<KernelTiming> {
        let nch = choice.channels.min(self.cfg.max_channels);
        let kernels = self.ring_all_gather(input, output, count, dtype, choice.proto, nch);
        mscclpp::record_launch_mix(engine, "nccl", &kernels);
        let spec = commverify::CollectiveSpec::all_gather(
            self.spec_members(input, output),
            count * dtype.size(),
        );
        self.maybe_verify(engine, &kernels, &spec)?;
        run_kernels(engine, &kernels, &self.ov)
    }

    /// ReduceScatter with an explicit tuner [`Choice`] (always ring).
    ///
    /// # Errors
    ///
    /// Propagates kernel deadlocks.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce_scatter(
        &self,
        engine: &mut Engine<Machine>,
        input: &[BufferId],
        output: &[BufferId],
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        choice: Choice,
    ) -> Result<KernelTiming> {
        let nch = choice.channels.min(self.cfg.max_channels);
        let kernels = self.ring_reduce_scatter(input, output, count, dtype, op, choice.proto, nch);
        mscclpp::record_launch_mix(engine, "nccl", &kernels);
        let n = self.topo.world_size();
        let shard = count * dtype.size();
        let spec = commverify::CollectiveSpec::reduce_scatter(
            self.spec_members(input, output),
            n * shard,
            (0..n).map(|i| (i * shard, shard)).collect(),
        );
        self.maybe_verify(engine, &kernels, &spec)?;
        run_kernels(engine, &kernels, &self.ov)
    }

    /// Broadcast from `root` with an explicit tuner [`Choice`].
    ///
    /// # Errors
    ///
    /// Propagates kernel deadlocks.
    #[allow(clippy::too_many_arguments)]
    pub fn broadcast(
        &self,
        engine: &mut Engine<Machine>,
        input: &[BufferId],
        output: &[BufferId],
        count: usize,
        dtype: DataType,
        root: Rank,
        choice: Choice,
    ) -> Result<KernelTiming> {
        let nch = choice.channels.min(self.cfg.max_channels);
        let kernels = self.ring_broadcast(input, output, count, dtype, root, choice.proto, nch);
        mscclpp::record_launch_mix(engine, "nccl", &kernels);
        let spec = commverify::CollectiveSpec::broadcast(
            self.spec_members(input, output),
            count * dtype.size(),
            root.0,
        );
        self.maybe_verify(engine, &kernels, &spec)?;
        run_kernels(engine, &kernels, &self.ov)
    }
}

fn kernel_builder(rank: Rank, cfg: &NcclConfig) -> KernelBuilder {
    let mut kb = KernelBuilder::new(rank);
    kb.regs_per_thread(cfg.regs_per_thread);
    kb
}
