//! White-box tests of the NCCL primitive emitter: each primitive lowers
//! to the expected executor instruction shape, including the structural
//! overheads the paper attributes to NCCL (§2.2.2) — group syncs,
//! staging transfers, and credit waits.

use hw::{DataType, EnvKind, Machine, Rank, ReduceOp};
use mscclpp::{Instr, KernelBuilder, Setup};
use ncclsim::{Conn, NcclConfig, Prims, Proto};
use sim::Engine;

fn setup_conn() -> (Engine<Machine>, NcclConfig, Conn, hw::BufferId) {
    let mut e = Engine::new(Machine::new(EnvKind::A100_40G.spec(1)));
    let mut setup = Setup::new(&mut e);
    let cfg = NcclConfig::nccl();
    let conn = Conn::create(&mut setup, &cfg, Rank(0), Rank(1));
    let user = setup.alloc(Rank(0), 1 << 20);
    (e, cfg, conn, user)
}

fn kind(i: &Instr) -> &'static str {
    match i {
        Instr::Compute { .. } => "compute",
        Instr::RawPut { .. } => "rawput",
        Instr::RawReducePut { .. } => "rawreduceput",
        Instr::ReduceInto { .. } => "reduceinto",
        Instr::SemWait { .. } => "semwait",
        Instr::SemSignal { .. } => "semsignal",
        Instr::Copy { .. } => "copy",
        _ => "other",
    }
}

fn emit_on(
    rank: Rank,
    cfg: &NcclConfig,
    proto: Proto,
    f: impl FnOnce(&mut Prims<'_, '_>),
) -> Vec<String> {
    let mut kb = KernelBuilder::new(rank);
    {
        let mut tb = kb.block(0);
        let mut p = Prims::new(&mut tb, cfg, proto, DataType::F32, ReduceOp::Sum);
        f(&mut p);
    }
    let k = kb.build();
    k.blocks[0].iter().map(|i| kind(i).to_owned()).collect()
}

fn emit(cfg: &NcclConfig, proto: Proto, f: impl FnOnce(&mut Prims<'_, '_>)) -> Vec<String> {
    emit_on(Rank(0), cfg, proto, f)
}

#[test]
fn ll_send_is_group_sync_plus_flagged_put() {
    let (_e, cfg, conn, user) = setup_conn();
    let shape = emit(&cfg, Proto::LL, |p| p.send(&conn, user, 0, 4096));
    assert_eq!(shape, ["compute", "rawput"], "LL flags ride the data");
}

#[test]
fn simple_send_adds_a_separate_fence_and_signal() {
    let (_e, cfg, conn, user) = setup_conn();
    let shape = emit(&cfg, Proto::Simple, |p| p.send(&conn, user, 0, 4096));
    assert_eq!(
        shape,
        ["compute", "rawput", "semsignal"],
        "Simple protocol signals after the data"
    );
}

#[test]
fn send_pays_credit_wait_after_fifo_wraps() {
    let (_e, cfg, conn, user) = setup_conn();
    let shape = emit(&cfg, Proto::LL, |p| {
        for _ in 0..cfg.slots + 1 {
            p.send(&conn, user, 0, 1024);
        }
    });
    let waits = shape.iter().filter(|s| *s == "semwait").count();
    assert_eq!(waits, 1, "exactly the wrapped send waits for credit");
    // The wait precedes the final put.
    let last_wait = shape.iter().rposition(|s| s == "semwait").unwrap();
    let last_put = shape.iter().rposition(|s| s == "rawput").unwrap();
    assert!(last_wait < last_put);
}

#[test]
fn recv_reduce_send_fuses_into_one_transfer() {
    // Receiver side: runs on rank 1, consuming conn 0->1 and forwarding
    // on conn 1->2.
    let mut e = Engine::new(Machine::new(EnvKind::A100_40G.spec(1)));
    let mut setup = Setup::new(&mut e);
    let cfg = NcclConfig::nccl();
    let conn_in = Conn::create(&mut setup, &cfg, Rank(0), Rank(1));
    let conn_out = Conn::create(&mut setup, &cfg, Rank(1), Rank(2));
    let user = setup.alloc(Rank(1), 4096);
    let shape = emit_on(Rank(1), &cfg, Proto::Simple, |p| {
        p.recv_reduce_send(&conn_in, user, 0, &conn_out, 4096);
    });
    assert_eq!(
        shape,
        [
            "compute",
            "semwait",
            "rawreduceput",
            "semsignal",
            "semsignal"
        ],
        "wait data, fused reduce+forward, signal next, credit prev"
    );
}

#[test]
fn recv_reduce_copy_is_local_after_the_wait() {
    let mut e = Engine::new(Machine::new(EnvKind::A100_40G.spec(1)));
    let mut setup = Setup::new(&mut e);
    let cfg = NcclConfig::nccl();
    let conn = Conn::create(&mut setup, &cfg, Rank(0), Rank(1));
    let user = setup.alloc(Rank(1), 4096);
    let shape = emit_on(Rank(1), &cfg, Proto::LL, |p| {
        p.recv_reduce_copy(&conn, user, 0, user, 0, 4096);
    });
    assert_eq!(shape, ["compute", "semwait", "reduceinto", "semsignal"]);
}

#[test]
fn recv_copy_send_reads_staging_once_then_credits() {
    let mut e = Engine::new(Machine::new(EnvKind::A100_40G.spec(1)));
    let mut setup = Setup::new(&mut e);
    let cfg = NcclConfig::nccl();
    let conn_in = Conn::create(&mut setup, &cfg, Rank(0), Rank(1));
    let conn_out = Conn::create(&mut setup, &cfg, Rank(1), Rank(2));
    let dst = setup.alloc(Rank(1), 4096);
    let shape = emit_on(Rank(1), &cfg, Proto::LL, |p| {
        p.recv_copy_send(&conn_in, dst, 0, &conn_out, 4096);
    });
    assert_eq!(shape, ["compute", "semwait", "copy", "rawput", "semsignal"]);
}

#[test]
fn every_primitive_pays_the_group_sync() {
    // The static thread-group barrier of §2.2.2: every call starts with a
    // Compute(prim_sync).
    let (_e, cfg, conn, user) = setup_conn();
    let shape = emit(&cfg, Proto::LL, |p| {
        p.send(&conn, user, 0, 64);
        p.copy_local(user, 0, user, 64, 64);
        p.reduce_local(user, 0, user, 64, user, 128, 64);
    });
    let syncs = shape.iter().filter(|s| *s == "compute").count();
    assert_eq!(syncs, 3);
}
