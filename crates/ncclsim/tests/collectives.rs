//! Functional correctness of the NCCL baseline collectives: every
//! algorithm × protocol × topology combination actually reduces/moves
//! the right bytes, and relative timings behave like NCCL's.

use hw::{DataType, EnvKind, Machine, Rank, ReduceOp};
use mscclpp::Setup;
use ncclsim::{Algo, Choice, NcclComm, NcclConfig, Proto};
use sim::Engine;

struct Fixture {
    engine: Engine<Machine>,
    comm: NcclComm,
    n: usize,
}

fn fixture(kind: EnvKind, nodes: usize) -> Fixture {
    let mut engine = Engine::new(Machine::new(kind.spec(nodes)));
    let mut setup = Setup::new(&mut engine);
    let comm = NcclComm::new(&mut setup, NcclConfig::nccl());
    let n = nodes * 8;
    Fixture { engine, comm, n }
}

fn choice(algo: Algo, proto: Proto, channels: usize) -> Choice {
    Choice {
        algo,
        proto,
        channels,
    }
}

/// Element i of rank r's input.
fn input_val(r: usize, i: usize) -> f32 {
    (r + 1) as f32 + (i % 5) as f32
}

fn expected_sum(n: usize, i: usize) -> f32 {
    (0..n).map(|r| input_val(r, i)).sum()
}

fn check_all_reduce(kind: EnvKind, nodes: usize, count: usize, ch: Choice) {
    let mut f = fixture(kind, nodes);
    let inputs: Vec<_> = {
        let mut setup = Setup::new(&mut f.engine);
        setup.alloc_all(count * 4)
    };
    let outputs: Vec<_> = {
        let mut setup = Setup::new(&mut f.engine);
        setup.alloc_all(count * 4)
    };
    for r in 0..f.n {
        f.engine
            .world_mut()
            .pool_mut()
            .fill_with(inputs[r], DataType::F32, move |i| input_val(r, i));
    }
    let t = f
        .comm
        .all_reduce(
            &mut f.engine,
            &inputs,
            &outputs,
            count,
            DataType::F32,
            ReduceOp::Sum,
            ch,
        )
        .unwrap();
    for r in 0..f.n {
        let got = f
            .engine
            .world()
            .pool()
            .to_f32_vec(outputs[r], DataType::F32);
        for i in [0, 1, count / 2, count - 1] {
            assert_eq!(
                got[i],
                expected_sum(f.n, i),
                "rank {r} elem {i} ({kind:?} {nodes}n {count} elems {ch:?})"
            );
        }
    }
    assert!(t.elapsed().as_us() > 0.0);
}

#[test]
fn ring_allreduce_simple_single_node() {
    check_all_reduce(
        EnvKind::A100_40G,
        1,
        4096,
        choice(Algo::Ring, Proto::Simple, 1),
    );
}

#[test]
fn ring_allreduce_ll_single_node() {
    check_all_reduce(EnvKind::A100_40G, 1, 4096, choice(Algo::Ring, Proto::LL, 1));
}

#[test]
fn ring_allreduce_multichannel() {
    check_all_reduce(
        EnvKind::A100_40G,
        1,
        100_000,
        choice(Algo::Ring, Proto::Simple, 4),
    );
}

#[test]
fn ring_allreduce_two_nodes() {
    check_all_reduce(
        EnvKind::A100_40G,
        2,
        8192,
        choice(Algo::Ring, Proto::Simple, 2),
    );
}

#[test]
fn tree_allreduce_two_nodes() {
    check_all_reduce(EnvKind::A100_40G, 2, 4096, choice(Algo::Tree, Proto::LL, 1));
}

#[test]
fn tree_allreduce_four_nodes_simple() {
    check_all_reduce(
        EnvKind::A100_40G,
        4,
        10_000,
        choice(Algo::Tree, Proto::Simple, 2),
    );
}

#[test]
fn tree_allreduce_single_node() {
    check_all_reduce(EnvKind::H100, 1, 2048, choice(Algo::Tree, Proto::LL, 1));
}

#[test]
fn ring_allreduce_on_mi300x_mesh() {
    check_all_reduce(
        EnvKind::MI300X,
        1,
        4096,
        choice(Algo::Ring, Proto::Simple, 1),
    );
}

#[test]
fn allreduce_spanning_multiple_fifo_batches() {
    // Message much larger than slots*slot_bytes forces credit wrap-around.
    check_all_reduce(
        EnvKind::A100_40G,
        1,
        3_000_000, // 12 MB, LL slots are 32 KB: hundreds of batches
        choice(Algo::Ring, Proto::LL, 1),
    );
}

#[test]
fn allreduce_in_place() {
    let mut f = fixture(EnvKind::A100_40G, 1);
    let count = 2048usize;
    let bufs: Vec<_> = {
        let mut setup = Setup::new(&mut f.engine);
        setup.alloc_all(count * 4)
    };
    for r in 0..f.n {
        f.engine
            .world_mut()
            .pool_mut()
            .fill_with(bufs[r], DataType::F32, move |i| input_val(r, i));
    }
    f.comm
        .all_reduce(
            &mut f.engine,
            &bufs,
            &bufs,
            count,
            DataType::F32,
            ReduceOp::Sum,
            choice(Algo::Ring, Proto::Simple, 1),
        )
        .unwrap();
    for r in 0..f.n {
        let got = f.engine.world().pool().to_f32_vec(bufs[r], DataType::F32);
        assert_eq!(got[7], expected_sum(f.n, 7), "rank {r}");
    }
}

#[test]
fn all_gather_correct() {
    let mut f = fixture(EnvKind::A100_40G, 1);
    let count = 1000usize;
    let (inputs, outputs) = {
        let mut setup = Setup::new(&mut f.engine);
        (setup.alloc_all(count * 4), setup.alloc_all(count * 4 * f.n))
    };
    for r in 0..f.n {
        f.engine
            .world_mut()
            .pool_mut()
            .fill_with(inputs[r], DataType::F32, move |i| input_val(r, i));
    }
    f.comm
        .all_gather(
            &mut f.engine,
            &inputs,
            &outputs,
            count,
            DataType::F32,
            choice(Algo::Ring, Proto::Simple, 2),
        )
        .unwrap();
    for r in 0..f.n {
        let got = f
            .engine
            .world()
            .pool()
            .to_f32_vec(outputs[r], DataType::F32);
        for src in 0..f.n {
            for i in [0, count - 1] {
                assert_eq!(
                    got[src * count + i],
                    input_val(src, i),
                    "rank {r} chunk {src} elem {i}"
                );
            }
        }
    }
}

#[test]
fn all_gather_two_nodes_ll() {
    let mut f = fixture(EnvKind::A100_40G, 2);
    let count = 512usize;
    let (inputs, outputs) = {
        let mut setup = Setup::new(&mut f.engine);
        (setup.alloc_all(count * 4), setup.alloc_all(count * 4 * f.n))
    };
    for r in 0..f.n {
        f.engine
            .world_mut()
            .pool_mut()
            .fill_with(inputs[r], DataType::F32, move |i| input_val(r, i));
    }
    f.comm
        .all_gather(
            &mut f.engine,
            &inputs,
            &outputs,
            count,
            DataType::F32,
            choice(Algo::Ring, Proto::LL, 1),
        )
        .unwrap();
    let got = f
        .engine
        .world()
        .pool()
        .to_f32_vec(outputs[13], DataType::F32);
    for src in 0..f.n {
        assert_eq!(got[src * count], input_val(src, 0), "chunk {src}");
    }
}

#[test]
fn reduce_scatter_correct() {
    let mut f = fixture(EnvKind::A100_40G, 1);
    let count = 768usize; // per-rank output elems
    let (inputs, outputs) = {
        let mut setup = Setup::new(&mut f.engine);
        (setup.alloc_all(count * 4 * f.n), setup.alloc_all(count * 4))
    };
    for r in 0..f.n {
        f.engine
            .world_mut()
            .pool_mut()
            .fill_with(inputs[r], DataType::F32, move |i| input_val(r, i));
    }
    f.comm
        .reduce_scatter(
            &mut f.engine,
            &inputs,
            &outputs,
            count,
            DataType::F32,
            ReduceOp::Sum,
            choice(Algo::Ring, Proto::Simple, 1),
        )
        .unwrap();
    for r in 0..f.n {
        let got = f
            .engine
            .world()
            .pool()
            .to_f32_vec(outputs[r], DataType::F32);
        for i in [0, count - 1] {
            let global = r * count + i;
            let want: f32 = (0..f.n).map(|src| input_val(src, global)).sum();
            assert_eq!(got[i], want, "rank {r} elem {i}");
        }
    }
}

#[test]
fn broadcast_correct_from_nonzero_root() {
    let mut f = fixture(EnvKind::A100_40G, 1);
    let count = 1500usize;
    let (inputs, outputs) = {
        let mut setup = Setup::new(&mut f.engine);
        (setup.alloc_all(count * 4), setup.alloc_all(count * 4))
    };
    let root = 3usize;
    f.engine
        .world_mut()
        .pool_mut()
        .fill_with(inputs[root], DataType::F32, |i| i as f32 * 0.5);
    f.comm
        .broadcast(
            &mut f.engine,
            &inputs,
            &outputs,
            count,
            DataType::F32,
            Rank(root),
            choice(Algo::Ring, Proto::LL, 1),
        )
        .unwrap();
    for r in 0..f.n {
        let got = f
            .engine
            .world()
            .pool()
            .to_f32_vec(outputs[r], DataType::F32);
        assert_eq!(got[100], 50.0, "rank {r}");
        assert_eq!(got[count - 1], (count - 1) as f32 * 0.5, "rank {r}");
    }
}

#[test]
fn f16_allreduce_is_close() {
    let mut f = fixture(EnvKind::A100_40G, 1);
    let count = 512usize;
    let bufs: Vec<_> = {
        let mut setup = Setup::new(&mut f.engine);
        setup.alloc_all(count * 2)
    };
    for r in 0..f.n {
        f.engine
            .world_mut()
            .pool_mut()
            .fill_with(bufs[r], DataType::F16, move |i| ((r + i) % 8) as f32);
    }
    f.comm
        .all_reduce(
            &mut f.engine,
            &bufs,
            &bufs,
            count,
            DataType::F16,
            ReduceOp::Sum,
            choice(Algo::Ring, Proto::LL, 1),
        )
        .unwrap();
    let got = f.engine.world().pool().to_f32_vec(bufs[4], DataType::F16);
    let want: f32 = (0..8).map(|r| ((r) % 8) as f32).sum();
    // Small integers sum exactly in f16.
    assert_eq!(got[0], want);
}

#[test]
fn tree_beats_ring_for_small_multinode_messages() {
    // NCCL's tuning rationale: tree latency scales with log(nodes) +
    // chain, ring with 2(N-1).
    let count = 256usize; // 1 KB
    let time = |algo| {
        let mut f = fixture(EnvKind::A100_40G, 4);
        let bufs: Vec<_> = {
            let mut setup = Setup::new(&mut f.engine);
            setup.alloc_all(count * 4)
        };
        f.comm
            .all_reduce(
                &mut f.engine,
                &bufs,
                &bufs,
                count,
                DataType::F32,
                ReduceOp::Sum,
                choice(algo, Proto::LL, 1),
            )
            .unwrap()
            .elapsed()
            .as_us()
    };
    let ring = time(Algo::Ring);
    let tree = time(Algo::Tree);
    assert!(
        tree < ring,
        "tree ({tree}us) should beat ring ({ring}us) at 1KB x 4 nodes"
    );
}

#[test]
fn ll_beats_simple_small_and_loses_large() {
    let time = |proto, count: usize| {
        let mut f = fixture(EnvKind::A100_40G, 1);
        let bufs: Vec<_> = {
            let mut setup = Setup::new(&mut f.engine);
            setup.alloc_all(count * 4)
        };
        f.comm
            .all_reduce(
                &mut f.engine,
                &bufs,
                &bufs,
                count,
                DataType::F32,
                ReduceOp::Sum,
                choice(Algo::Ring, proto, 1),
            )
            .unwrap()
            .elapsed()
            .as_us()
    };
    let small_ll = time(Proto::LL, 256);
    let small_simple = time(Proto::Simple, 256);
    assert!(
        small_ll < small_simple,
        "LL {small_ll}us vs Simple {small_simple}us at 1KB"
    );
    let large_ll = time(Proto::LL, 16 << 20);
    let large_simple = time(Proto::Simple, 16 << 20);
    assert!(
        large_simple < large_ll,
        "Simple {large_simple}us vs LL {large_ll}us at 64MB"
    );
}
