//! Cross-validation of the static verifier against the dynamic
//! vector-clock sanitizer: a seeded racy plan must produce the *same*
//! offending instruction pair from both, and the repaired plan must be
//! clean under both.

use hw::{EnvKind, Machine, Rank};
use mscclpp::{Kernel, KernelBuilder, Overheads, Protocol, Setup};
use sim::Engine;

fn engine() -> Engine<Machine> {
    let mut e = Engine::new(Machine::new(EnvKind::A100_40G.spec(1)));
    hw::wire(&mut e);
    e
}

/// Builds the seeded racy plan (and its fixed twin when `wait` is set):
/// rank 0 puts 256 B into rank 1's buffer while rank 1 overwrites the
/// same range, with or without the ordering wait.
fn plan(engine: &mut Engine<Machine>, wait: bool) -> Vec<Kernel> {
    let mut setup = Setup::new(engine);
    let b0 = setup.alloc(Rank(0), 1024);
    let b1 = setup.alloc(Rank(1), 1024);
    let s1 = setup.alloc(Rank(1), 1024);
    let (ch0, ch1) = setup
        .memory_channel_pair(Rank(0), b0, b1, Rank(1), b1, b0, Protocol::LL)
        .unwrap();

    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).put(&ch0, 0, 0, 256);
    let mut k1 = KernelBuilder::new(Rank(1));
    if wait {
        k1.block(0).wait_data(&ch1).copy(s1, 0, b1, 0, 256);
    } else {
        k1.block(0).copy(s1, 0, b1, 0, 256);
    }
    vec![k0.build(), k1.build()]
}

/// An instruction pair as (rank, tb, pc) tuples, order-normalised.
fn pair(a: (usize, usize, usize), b: (usize, usize, usize)) -> [(usize, usize, usize); 2] {
    let mut p = [a, b];
    p.sort_unstable();
    p
}

#[test]
fn static_and_dynamic_report_the_same_racing_pair() {
    // Static side.
    let mut e = engine();
    let kernels = plan(&mut e, false);
    let report = commverify::analyze_kernels(&kernels, e.world().pool());
    let [commverify::VerifyError::Race { first, second, .. }] = report.findings.as_slice() else {
        panic!("expected exactly one static race, got: {report}");
    };
    let static_pair = pair(
        (first.rank.0, first.tb, first.pc),
        (second.rank.0, second.tb, second.pc),
    );

    // Dynamic side: run the same kernels under the sanitizer.
    let mut e = engine();
    let kernels = plan(&mut e, false);
    let (_, san) = mscclpp::run_kernels_sanitized(&mut e, &kernels, &Overheads::mscclpp()).unwrap();
    let [race] = san.races.as_slice() else {
        panic!(
            "expected exactly one dynamic race, got {} races",
            san.races.len()
        );
    };
    let dynamic_pair = pair(
        (race.first.rank.0, race.first.tb, race.first.pc),
        (race.second.rank.0, race.second.tb, race.second.pc),
    );

    assert_eq!(
        static_pair, dynamic_pair,
        "static verifier and dynamic sanitizer disagree on the racing pair"
    );
    assert_eq!(static_pair, pair((0, 0, 0), (1, 0, 0)));
}

#[test]
fn repaired_plan_is_clean_under_both() {
    let mut e = engine();
    let kernels = plan(&mut e, true);
    let report = commverify::analyze_kernels(&kernels, e.world().pool());
    assert!(report.is_clean(), "static: {report}");

    let mut e = engine();
    let kernels = plan(&mut e, true);
    let (_, san) = mscclpp::run_kernels_sanitized(&mut e, &kernels, &Overheads::mscclpp()).unwrap();
    assert!(san.is_clean(), "dynamic: {:?}", san.races);
    assert!(san.accesses_checked > 0);
}
