//! Golden pass: every built-in algorithm on every relevant topology and
//! representative sizes must sail through the static verifier (default-on
//! in every comm) *and* run clean under the dynamic vector-clock
//! sanitizer. A finding from either surfaces as an `Err` here.

use collective::{
    AllGatherAlgo, AllReduceAlgo, AllToAllAlgo, BroadcastAlgo, CollComm, PeerOrder,
    ReduceScatterAlgo, ScratchReuse,
};
use hw::{DataType, EnvKind, Machine, Rank, ReduceOp};
use sim::Engine;

fn engine(kind: EnvKind, nodes: usize) -> Engine<Machine> {
    let mut e = Engine::new(Machine::new(kind.spec(nodes)));
    hw::wire(&mut e);
    e
}

fn alloc_all(e: &mut Engine<Machine>, bytes: usize) -> Vec<hw::BufferId> {
    let n = e.world().topology().world_size();
    (0..n)
        .map(|r| e.world_mut().pool_mut().alloc(Rank(r), bytes))
        .collect()
}

/// A CollComm with the static verifier (already the default) and the
/// dynamic sanitizer both armed.
fn comm() -> CollComm {
    let mut c = CollComm::new();
    c.set_sanitize(true);
    c
}

fn golden_allreduce(kind: EnvKind, nodes: usize, count: usize, algo: AllReduceAlgo) {
    let mut e = engine(kind, nodes);
    let inputs = alloc_all(&mut e, count * 4);
    let outputs = alloc_all(&mut e, count * 4);
    comm()
        .all_reduce_with(
            &mut e,
            &inputs,
            &outputs,
            count,
            DataType::F32,
            ReduceOp::Sum,
            algo,
        )
        .unwrap_or_else(|err| panic!("allreduce {algo:?} on {kind:?} x{nodes}: {err}"));
}

#[test]
fn allreduce_golden_single_node() {
    for (count, algo) in [
        (4_096, AllReduceAlgo::OnePhaseLl),
        (
            40_000,
            AllReduceAlgo::TwoPhaseLl {
                reuse: ScratchReuse::Rotate,
                order: PeerOrder::Staggered,
            },
        ),
        (
            40_000,
            AllReduceAlgo::TwoPhaseLl {
                reuse: ScratchReuse::Barrier,
                order: PeerOrder::Sequential,
            },
        ),
        (
            100_000,
            AllReduceAlgo::TwoPhaseHb {
                order: PeerOrder::Staggered,
            },
        ),
        (100_000, AllReduceAlgo::TwoPhasePort),
        (50_000, AllReduceAlgo::Ring),
    ] {
        golden_allreduce(EnvKind::A100_40G, 1, count, algo);
    }
    golden_allreduce(EnvKind::H100, 1, 100_000, AllReduceAlgo::TwoPhaseSwitch);
    golden_allreduce(
        EnvKind::MI300X,
        1,
        50_000,
        AllReduceAlgo::TwoPhaseHb {
            order: PeerOrder::Sequential,
        },
    );
}

#[test]
fn allreduce_golden_multi_node() {
    golden_allreduce(EnvKind::A100_40G, 2, 4_096, AllReduceAlgo::HierLl);
    golden_allreduce(EnvKind::A100_40G, 2, 200_000, AllReduceAlgo::HierHb);
}

#[test]
fn allgather_golden() {
    for (kind, nodes, count, algo) in [
        (EnvKind::A100_40G, 1, 2_048, AllGatherAlgo::AllPairsLl),
        (EnvKind::A100_40G, 1, 100_000, AllGatherAlgo::AllPairsHb),
        (EnvKind::A100_40G, 1, 100_000, AllGatherAlgo::AllPairsPort),
        (EnvKind::A100_40G, 2, 512, AllGatherAlgo::HierLl),
        (EnvKind::A100_40G, 2, 100_000, AllGatherAlgo::HierHb),
    ] {
        let mut e = engine(kind, nodes);
        let n = nodes * 8;
        let inputs = alloc_all(&mut e, count * 4);
        let outputs = alloc_all(&mut e, count * 4 * n);
        comm()
            .all_gather_with(&mut e, &inputs, &outputs, count, DataType::F32, algo)
            .unwrap_or_else(|err| panic!("allgather {algo:?} on {kind:?} x{nodes}: {err}"));
    }
}

#[test]
fn reduce_scatter_golden() {
    for (nodes, count, algo) in [
        (1, 4_096, ReduceScatterAlgo::AllPairsLl),
        (1, 100_000, ReduceScatterAlgo::AllPairsHb),
        (2, 1_600, ReduceScatterAlgo::AllPairsHb),
    ] {
        let mut e = engine(EnvKind::A100_40G, nodes);
        let n = nodes * 8;
        let inputs = alloc_all(&mut e, count * 4);
        let outputs = alloc_all(&mut e, (count / n + 1) * 4 * 2);
        comm()
            .reduce_scatter_with(
                &mut e,
                &inputs,
                &outputs,
                count,
                DataType::F32,
                ReduceOp::Sum,
                algo,
            )
            .unwrap_or_else(|err| panic!("reduce_scatter {algo:?} x{nodes}: {err}"));
    }
}

#[test]
fn broadcast_golden() {
    for (kind, nodes, count, algo) in [
        (EnvKind::A100_40G, 1, 3_000, BroadcastAlgo::Direct),
        (EnvKind::A100_40G, 2, 2_048, BroadcastAlgo::Direct),
        (EnvKind::H100, 1, 4_096, BroadcastAlgo::Switch),
    ] {
        let mut e = engine(kind, nodes);
        let inputs = alloc_all(&mut e, count * 4);
        let outputs = alloc_all(&mut e, count * 4);
        comm()
            .broadcast_with(
                &mut e,
                &inputs,
                &outputs,
                count,
                DataType::F32,
                Rank(0),
                algo,
            )
            .unwrap_or_else(|err| panic!("broadcast {algo:?} on {kind:?} x{nodes}: {err}"));
    }
}

#[test]
fn all_to_all_golden() {
    for (nodes, count, algo) in [
        (1, 500, AllToAllAlgo::AllPairsLl),
        (1, 40_000, AllToAllAlgo::AllPairsHb),
        (2, 256, AllToAllAlgo::AllPairsLl),
    ] {
        let mut e = engine(EnvKind::A100_40G, nodes);
        let n = nodes * 8;
        let inputs = alloc_all(&mut e, count * 4 * n);
        let outputs = alloc_all(&mut e, count * 4 * n);
        comm()
            .all_to_all_with(&mut e, &inputs, &outputs, count, DataType::F32, algo)
            .unwrap_or_else(|err| panic!("alltoall {algo:?} x{nodes}: {err}"));
    }
}

#[test]
fn ncclsim_golden() {
    for nodes in [1usize, 2] {
        let mut e = engine(EnvKind::A100_40G, nodes);
        let count = 8_192usize;
        let inputs = alloc_all(&mut e, count * 4);
        let outputs = alloc_all(&mut e, count * 4);
        let mut setup = mscclpp::Setup::new(&mut e);
        let comm = ncclsim::NcclComm::new(&mut setup, ncclsim::NcclConfig::nccl());
        let choice = ncclsim::tune(count * 4, nodes);
        comm.all_reduce(
            &mut e,
            &inputs,
            &outputs,
            count,
            DataType::F32,
            ReduceOp::Sum,
            choice,
        )
        .unwrap_or_else(|err| panic!("nccl allreduce x{nodes}: {err}"));
    }
}

#[test]
fn msccl_golden() {
    let mut e = engine(EnvKind::A100_40G, 1);
    let count = 8_192usize;
    let inputs = alloc_all(&mut e, count * 4);
    let outputs = alloc_all(&mut e, count * 4 * 8);
    let mut setup = mscclpp::Setup::new(&mut e);
    let comm = msccl::MscclComm::new(&mut setup, msccl::MscclConfig::default());
    comm.all_reduce(
        &mut e,
        &inputs,
        &outputs,
        count,
        DataType::F32,
        ReduceOp::Sum,
        None,
    )
    .unwrap_or_else(|err| panic!("msccl allreduce: {err}"));
}

#[test]
fn dsl_builtins_golden() {
    // CompileOptions { verify: true } is the default: a finding in any
    // built-in program would abort compilation here.
    use mscclpp_dsl::{algorithms, CompileOptions};
    let progs = [
        ("one_phase", algorithms::one_phase_all_reduce(8).unwrap(), 1),
        ("two_phase", algorithms::two_phase_all_reduce(8).unwrap(), 1),
        ("ring", algorithms::ring_all_reduce(8).unwrap(), 1),
        ("allgather", algorithms::all_pairs_all_gather(8).unwrap(), 8),
    ];
    for (name, prog, out_scale) in &progs {
        let mut e = engine(EnvKind::A100_40G, 1);
        let mut setup = mscclpp::Setup::new(&mut e);
        let inputs = setup.alloc_all(4_096);
        let outputs = setup.alloc_all(4_096 * out_scale);
        prog.compile(&mut setup, &inputs, &outputs, CompileOptions::default())
            .unwrap_or_else(|err| panic!("dsl {name}: {err}"));
    }
    let mut e = engine(EnvKind::H100, 1);
    let mut setup = mscclpp::Setup::new(&mut e);
    let inputs = setup.alloc_all(4_096);
    let outputs = setup.alloc_all(4_096);
    algorithms::switch_all_reduce(8)
        .unwrap()
        .compile(&mut setup, &inputs, &outputs, CompileOptions::default())
        .unwrap_or_else(|err| panic!("dsl switch: {err}"));
}
