//! Negative-test corpus driver: each module under `corpus/` hand-writes
//! one unsound plan and asserts the exact [`commverify::VerifyError`]
//! variant and offending instruction sites, plus (where instructive) the
//! minimal fix that makes the same shape verify clean.

#[path = "corpus/common.rs"]
mod common;

#[path = "corpus/deadlock.rs"]
mod deadlock;
#[path = "corpus/duplicate.rs"]
mod duplicate;
#[path = "corpus/imbalance.rs"]
mod imbalance;
#[path = "corpus/misplaced.rs"]
mod misplaced;
#[path = "corpus/missing.rs"]
mod missing;
#[path = "corpus/oob.rs"]
mod oob;
#[path = "corpus/orphan.rs"]
mod orphan;
#[path = "corpus/racy.rs"]
mod racy;
#[path = "corpus/stale.rs"]
mod stale;
#[path = "corpus/unflushed.rs"]
mod unflushed;
