//! Shared scaffolding for the negative-test corpus: a small single-node
//! machine plus helpers to allocate buffers and assert findings.

use hw::{EnvKind, Machine};
use sim::Engine;

pub fn engine() -> Engine<Machine> {
    let mut e = Engine::new(Machine::new(EnvKind::A100_40G.spec(1)));
    hw::wire(&mut e);
    e
}

/// Convenience for building an expected instruction site.
pub fn site(rank: usize, tb: usize, pc: usize) -> commverify::Site {
    commverify::Site {
        rank: hw::Rank(rank),
        tb,
        pc,
    }
}
