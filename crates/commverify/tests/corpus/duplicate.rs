//! An AllReduce plan that reduces the same peer contribution twice —
//! numerically `2·x₁ + x₀` instead of `x₀ + x₁`. Race- and
//! deadlock-free, so only the semantic pass can see it.

use commverify::{Checks, CollectiveSpec, SpecMember, VerifyError};
use hw::{DataType, Rank, ReduceOp};
use mscclpp::{KernelBuilder, Protocol, Setup};

use crate::common;

const B: usize = 256;

#[test]
fn double_reduced_peer_contribution_is_reported() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let in0 = setup.alloc(Rank(0), B);
    let in1 = setup.alloc(Rank(1), B);
    let out0 = setup.alloc(Rank(0), B);
    let out1 = setup.alloc(Rank(1), B);
    let (ch0, ch1) = setup
        .memory_channel_pair(Rank(0), out0, in1, Rank(1), out1, in0, Protocol::LL)
        .unwrap();

    // Rank 0 read-reduces rank 1's input twice (pc 1 and pc 2); rank 1
    // runs the correct plan.
    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0)
        .copy(in0, 0, out0, 0, B)
        .read_reduce(&ch0, 0, out0, 0, B, DataType::F32, ReduceOp::Sum)
        .read_reduce(&ch0, 0, out0, 0, B, DataType::F32, ReduceOp::Sum);
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0).copy(in1, 0, out1, 0, B).read_reduce(
        &ch1,
        0,
        out1,
        0,
        B,
        DataType::F32,
        ReduceOp::Sum,
    );

    let spec = CollectiveSpec::all_reduce(
        vec![
            SpecMember {
                rank: Rank(0),
                input: in0,
                output: out0,
            },
            SpecMember {
                rank: Rank(1),
                input: in1,
                output: out1,
            },
        ],
        B,
    );
    let kernels = vec![k0.build(), k1.build()];
    let report =
        commverify::analyze_collective(&kernels, engine.world().pool(), &Checks::all(), &spec);
    assert_eq!(
        report.findings,
        vec![VerifyError::DuplicateContribution {
            rank: Rank(0),
            buf: out0,
            range: (0, B),
            dup: Rank(1),
            first: Some(common::site(0, 0, 1)),
            second: Some(common::site(0, 0, 2)),
        }],
        "{report}"
    );
}
