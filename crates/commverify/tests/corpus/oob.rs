//! An access extending past the registered size of its buffer.

use commverify::VerifyError;
use hw::Rank;
use mscclpp::{KernelBuilder, Setup};

use crate::common;

#[test]
fn copy_past_buffer_end_is_out_of_bounds() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let src = setup.alloc(Rank(0), 1024);
    let dst = setup.alloc(Rank(0), 1024);

    // [896, 1152) runs 128 B past the 1024-B registration.
    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).copy(src, 0, dst, 896, 256);

    let kernels = vec![k0.build()];
    let report = commverify::analyze_kernels(&kernels, engine.world().pool());
    assert_eq!(
        report.findings,
        vec![VerifyError::OutOfBounds {
            site: common::site(0, 0, 0),
            buf: dst,
            range: (896, 1152),
            len: 1024,
        }],
        "{report}"
    );
}
