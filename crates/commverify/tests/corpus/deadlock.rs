//! Two ranks whose first instruction waits for a semaphore the *other*
//! rank only signals after its own wait: a happens-before cycle that
//! deadlocks every execution.

use commverify::VerifyError;
use hw::Rank;
use mscclpp::{KernelBuilder, Setup};

use crate::common;

#[test]
fn crossed_sem_waits_form_a_deadlock_cycle() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let sem0 = setup.semaphore(Rank(0));
    let sem1 = setup.semaphore(Rank(1));

    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).sem_wait(&sem0).sem_signal(&sem1);
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0).sem_wait(&sem1).sem_signal(&sem0);

    let kernels = vec![k0.build(), k1.build()];
    let report = commverify::analyze_kernels(&kernels, engine.world().pool());
    let [VerifyError::DeadlockCycle { path }] = report.findings.as_slice() else {
        panic!("expected exactly one deadlock cycle, got: {report}");
    };
    // The cycle must pass through both stuck waits.
    assert!(path.contains(&common::site(0, 0, 0)), "{report}");
    assert!(path.contains(&common::site(1, 0, 0)), "{report}");
}
