//! A semaphore signal no instruction ever waits on — dead code, or a
//! wait missing from the peer's stream.

use commverify::{Checks, VerifyError};
use hw::Rank;
use mscclpp::{KernelBuilder, Setup};

use crate::common;

#[test]
fn signal_without_matching_wait_is_an_orphan() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let sem = setup.semaphore(Rank(1));

    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).sem_signal(&sem);
    let k1 = KernelBuilder::new(Rank(1));

    let kernels = vec![k0.build(), k1.build()];
    let report = commverify::analyze_kernels(&kernels, engine.world().pool());
    let [VerifyError::OrphanSignal { site, cell }] = report.findings.as_slice() else {
        panic!("expected exactly one orphan signal, got: {report}");
    };
    assert_eq!(*site, common::site(0, 0, 0));
    assert_eq!(cell, "sem@rank1");

    // The transport preset tolerates orphan credit signals.
    let report = commverify::analyze_with(&kernels, engine.world().pool(), &Checks::transport());
    assert!(report.is_clean(), "{report}");
}
