//! A wait whose semaphore receives fewer signals than the wait needs:
//! starvation, reported with the exact needed/available counts.

use commverify::VerifyError;
use hw::Rank;
use mscclpp::{KernelBuilder, Setup};

use crate::common;

#[test]
fn wait_without_any_signal_is_an_imbalance() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let sem = setup.semaphore(Rank(0));

    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).sem_wait(&sem);

    let kernels = vec![k0.build()];
    let report = commverify::analyze_kernels(&kernels, engine.world().pool());
    let [VerifyError::SignalWaitImbalance {
        wait,
        needed,
        available,
        ..
    }] = report.findings.as_slice()
    else {
        panic!("expected exactly one imbalance, got: {report}");
    };
    assert_eq!(*wait, common::site(0, 0, 0));
    assert_eq!((*needed, *available), (1, 0));
}

#[test]
fn second_wait_on_a_once_signalled_sem_is_an_imbalance() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let sem = setup.semaphore(Rank(0));

    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).sem_wait(&sem).sem_wait(&sem);
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0).sem_signal(&sem);

    let kernels = vec![k0.build(), k1.build()];
    let report = commverify::analyze_kernels(&kernels, engine.world().pool());
    let [VerifyError::SignalWaitImbalance {
        wait,
        needed,
        available,
        ..
    }] = report.findings.as_slice()
    else {
        panic!("expected exactly one imbalance, got: {report}");
    };
    assert_eq!(*wait, common::site(0, 0, 1));
    assert_eq!((*needed, *available), (2, 1));
}
