//! A Broadcast plan that stages through scratch it never filled: the
//! root's output ends the plan holding uninitialized bytes. The report
//! carries both the last writer and the instruction where the staleness
//! originated (the read of the unwritten scratch).

use commverify::{Checks, CollectiveSpec, SpecMember, VerifyError};
use hw::Rank;
use mscclpp::{KernelBuilder, Protocol, Setup};

use crate::common;

const B: usize = 256;

fn spec(
    in0: hw::BufferId,
    in1: hw::BufferId,
    out0: hw::BufferId,
    out1: hw::BufferId,
) -> CollectiveSpec {
    CollectiveSpec::broadcast(
        vec![
            SpecMember {
                rank: Rank(0),
                input: in0,
                output: out0,
            },
            SpecMember {
                rank: Rank(1),
                input: in1,
                output: out1,
            },
        ],
        B,
        0,
    )
}

#[test]
fn unfilled_scratch_staging_is_reported() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let in0 = setup.alloc(Rank(0), B);
    let in1 = setup.alloc(Rank(1), B);
    let out0 = setup.alloc(Rank(0), B);
    let out1 = setup.alloc(Rank(1), B);
    let scratch0 = setup.alloc(Rank(0), B);
    let (ch0, _ch1) = setup
        .memory_channel_pair(Rank(0), in0, out1, Rank(1), in1, out0, Protocol::LL)
        .unwrap();

    // The root copies *unwritten* scratch into its own output (pc 0),
    // then correctly delivers its input to the peer (pc 1).
    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).copy(scratch0, 0, out0, 0, B).put(&ch0, 0, 0, B);
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0);

    let kernels = vec![k0.build(), k1.build()];
    let report = commverify::analyze_collective(
        &kernels,
        engine.world().pool(),
        &Checks::all(),
        &spec(in0, in1, out0, out1),
    );
    assert_eq!(
        report.findings,
        vec![VerifyError::StaleOutput {
            rank: Rank(0),
            buf: out0,
            range: (0, B),
            writer: Some(common::site(0, 0, 0)),
            origin: Some(common::site(0, 0, 0)),
        }],
        "{report}"
    );
}

#[test]
fn filled_scratch_staging_is_clean() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let in0 = setup.alloc(Rank(0), B);
    let in1 = setup.alloc(Rank(1), B);
    let out0 = setup.alloc(Rank(0), B);
    let out1 = setup.alloc(Rank(1), B);
    let scratch0 = setup.alloc(Rank(0), B);
    let (ch0, _ch1) = setup
        .memory_channel_pair(Rank(0), in0, out1, Rank(1), in1, out0, Protocol::LL)
        .unwrap();

    // Same shape with the scratch filled first: staging is fine exactly
    // when the staged bytes carry the root's data.
    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0)
        .copy(in0, 0, scratch0, 0, B)
        .copy(scratch0, 0, out0, 0, B)
        .put(&ch0, 0, 0, B);
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0);

    let kernels = vec![k0.build(), k1.build()];
    let report = commverify::analyze_collective(
        &kernels,
        engine.world().pool(),
        &Checks::all(),
        &spec(in0, in1, out0, out1),
    );
    assert!(report.is_clean(), "{report}");
}
