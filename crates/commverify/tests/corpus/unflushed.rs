//! A proxied port put with no flush, port signal, or signalling put
//! behind it: the kernel can exit while the DMA is still in flight.

use commverify::VerifyError;
use hw::Rank;
use mscclpp::{KernelBuilder, Setup};

use crate::common;

#[test]
fn port_put_without_flush_is_reported() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let b0 = setup.alloc(Rank(0), 1024);
    let b1 = setup.alloc(Rank(1), 1024);
    let (ch0, _ch1) = setup
        .port_channel_pair(Rank(0), b0, b1, Rank(1), b1, b0)
        .unwrap();

    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).port_put(&ch0, 0, 0, 256);

    let kernels = vec![k0.build()];
    let report = commverify::analyze_kernels(&kernels, engine.world().pool());
    assert_eq!(
        report.findings,
        vec![VerifyError::UnflushedPortPut {
            site: common::site(0, 0, 0),
        }],
        "{report}"
    );
}

#[test]
fn flushed_port_put_is_clean() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let b0 = setup.alloc(Rank(0), 1024);
    let b1 = setup.alloc(Rank(1), 1024);
    let (ch0, _ch1) = setup
        .port_channel_pair(Rank(0), b0, b1, Rank(1), b1, b0)
        .unwrap();

    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).port_put(&ch0, 0, 0, 256).port_flush(&ch0);

    let kernels = vec![k0.build()];
    let report = commverify::analyze_kernels(&kernels, engine.world().pool());
    assert!(report.is_clean(), "{report}");
}
