//! An AllGather plan that routes a chunk to the wrong output slot: the
//! rank writes its own input where its peer's chunk belongs. Every byte
//! is live data, so only placement tracking catches it — the report
//! names both the expected and the actual `(rank, source offset)`.

use commverify::{Checks, CollectiveSpec, SpecMember, VerifyError};
use hw::Rank;
use mscclpp::{KernelBuilder, Protocol, Setup};

use crate::common;

const B: usize = 256;

#[test]
fn own_chunk_in_the_peer_slot_is_reported() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let in0 = setup.alloc(Rank(0), B);
    let in1 = setup.alloc(Rank(1), B);
    let out0 = setup.alloc(Rank(0), 2 * B);
    let out1 = setup.alloc(Rank(1), 2 * B);
    let (ch0, _ch1) = setup
        .memory_channel_pair(Rank(0), in0, out1, Rank(1), in1, out0, Protocol::LL)
        .unwrap();

    // Rank 0 fills its own slot 0 (pc 0), then writes its own input into
    // slot 1 as well (pc 1) — where rank 1's chunk belongs — and
    // correctly delivers slot 0 of rank 1's output (pc 2). Rank 1 fills
    // only its own slot 1.
    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0)
        .copy(in0, 0, out0, 0, B)
        .copy(in0, 0, out0, B, B)
        .put(&ch0, 0, 0, B);
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0).copy(in1, 0, out1, B, B);

    let spec = CollectiveSpec::all_gather(
        vec![
            SpecMember {
                rank: Rank(0),
                input: in0,
                output: out0,
            },
            SpecMember {
                rank: Rank(1),
                input: in1,
                output: out1,
            },
        ],
        B,
    );
    let kernels = vec![k0.build(), k1.build()];
    let report =
        commverify::analyze_collective(&kernels, engine.world().pool(), &Checks::all(), &spec);
    assert_eq!(
        report.findings,
        vec![VerifyError::WrongPlacement {
            rank: Rank(0),
            buf: out0,
            range: (B, 2 * B),
            want: (Rank(1), 0),
            got: (Rank(0), 0),
            writer: Some(common::site(0, 0, 1)),
            origin: Some(common::site(0, 0, 1)),
        }],
        "{report}"
    );
}
