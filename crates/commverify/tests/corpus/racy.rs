//! A remote put that lands in a range the owner concurrently overwrites,
//! with no signal/wait between the two: a write→write race.

use commverify::VerifyError;
use hw::Rank;
use mscclpp::{KernelBuilder, Protocol, Setup};

use crate::common;

#[test]
fn unsynchronized_put_vs_local_write_is_a_race() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let b0 = setup.alloc(Rank(0), 1024);
    let b1 = setup.alloc(Rank(1), 1024);
    let s1 = setup.alloc(Rank(1), 1024);
    let (ch0, _ch1) = setup
        .memory_channel_pair(Rank(0), b0, b1, Rank(1), b1, b0, Protocol::LL)
        .unwrap();

    // Rank 0 puts 256 B into rank 1's buffer; rank 1 overwrites the same
    // range from scratch without waiting for the data to arrive.
    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).put(&ch0, 0, 0, 256);
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0).copy(s1, 0, b1, 0, 256);

    let kernels = vec![k0.build(), k1.build()];
    let report = commverify::analyze_kernels(&kernels, engine.world().pool());
    assert_eq!(
        report.findings,
        vec![VerifyError::Race {
            first: common::site(0, 0, 0),
            first_range: (0, 256),
            first_write: true,
            second: common::site(1, 0, 0),
            second_range: (0, 256),
            second_write: true,
            buf: b1,
        }],
        "{report}"
    );
}

#[test]
fn signalled_put_with_wait_is_clean() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let b0 = setup.alloc(Rank(0), 1024);
    let b1 = setup.alloc(Rank(1), 1024);
    let s1 = setup.alloc(Rank(1), 1024);
    let (ch0, ch1) = setup
        .memory_channel_pair(Rank(0), b0, b1, Rank(1), b1, b0, Protocol::LL)
        .unwrap();

    // Same shape, but the consumer waits for the arrival counter first —
    // the wait edge orders the two writes.
    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).put(&ch0, 0, 0, 256);
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0).wait_data(&ch1).copy(s1, 0, b1, 0, 256);

    let kernels = vec![k0.build(), k1.build()];
    let report = commverify::analyze_kernels(&kernels, engine.world().pool());
    assert!(report.is_clean(), "{report}");
}
