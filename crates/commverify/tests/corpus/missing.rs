//! An AllReduce plan where one rank forgets to pull its peer's
//! contribution: the output holds only the local input, and the semantic
//! pass reports exactly which live rank's data is absent.

use commverify::{Checks, CollectiveSpec, SpecMember, VerifyError};
use hw::{DataType, Rank, ReduceOp};
use mscclpp::{KernelBuilder, Protocol, Setup};

use crate::common;

const B: usize = 256;

#[test]
fn missing_peer_contribution_is_reported() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let in0 = setup.alloc(Rank(0), B);
    let in1 = setup.alloc(Rank(1), B);
    let out0 = setup.alloc(Rank(0), B);
    let out1 = setup.alloc(Rank(1), B);
    let (_ch0, ch1) = setup
        .memory_channel_pair(Rank(0), out0, in1, Rank(1), out1, in0, Protocol::LL)
        .unwrap();

    // Rank 0 copies its own input and stops — rank 1's contribution
    // never arrives. Rank 1 runs the correct two-step plan.
    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).copy(in0, 0, out0, 0, B);
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0).copy(in1, 0, out1, 0, B).read_reduce(
        &ch1,
        0,
        out1,
        0,
        B,
        DataType::F32,
        ReduceOp::Sum,
    );

    let spec = CollectiveSpec::all_reduce(
        vec![
            SpecMember {
                rank: Rank(0),
                input: in0,
                output: out0,
            },
            SpecMember {
                rank: Rank(1),
                input: in1,
                output: out1,
            },
        ],
        B,
    );
    let kernels = vec![k0.build(), k1.build()];
    let report =
        commverify::analyze_collective(&kernels, engine.world().pool(), &Checks::all(), &spec);
    assert_eq!(
        report.findings,
        vec![VerifyError::MissingContribution {
            rank: Rank(0),
            buf: out0,
            range: (0, B),
            missing: Rank(1),
            writer: Some(common::site(0, 0, 0)),
            present: Some(common::site(0, 0, 0)),
        }],
        "{report}"
    );
}

#[test]
fn full_exchange_is_clean() {
    let mut engine = common::engine();
    let mut setup = Setup::new(&mut engine);
    let in0 = setup.alloc(Rank(0), B);
    let in1 = setup.alloc(Rank(1), B);
    let out0 = setup.alloc(Rank(0), B);
    let out1 = setup.alloc(Rank(1), B);
    let (ch0, ch1) = setup
        .memory_channel_pair(Rank(0), out0, in1, Rank(1), out1, in0, Protocol::LL)
        .unwrap();

    // Same shape with the missing read-reduce restored on rank 0.
    let mut k0 = KernelBuilder::new(Rank(0));
    k0.block(0).copy(in0, 0, out0, 0, B).read_reduce(
        &ch0,
        0,
        out0,
        0,
        B,
        DataType::F32,
        ReduceOp::Sum,
    );
    let mut k1 = KernelBuilder::new(Rank(1));
    k1.block(0).copy(in1, 0, out1, 0, B).read_reduce(
        &ch1,
        0,
        out1,
        0,
        B,
        DataType::F32,
        ReduceOp::Sum,
    );

    let spec = CollectiveSpec::all_reduce(
        vec![
            SpecMember {
                rank: Rank(0),
                input: in0,
                output: out0,
            },
            SpecMember {
                rank: Rank(1),
                input: in1,
                output: out1,
            },
        ],
        B,
    );
    let kernels = vec![k0.build(), k1.build()];
    let report =
        commverify::analyze_collective(&kernels, engine.world().pool(), &Checks::all(), &spec);
    assert!(report.is_clean(), "{report}");
}
