//! `commverify` — static verification of compiled communication plans.
//!
//! Given the per-rank, per-thread-block instruction streams of a kernel
//! batch (plus the channel wiring embedded in the instructions and the
//! memory pool they index into), this crate constructs the happens-before
//! graph induced by the synchronization instructions and reports:
//!
//! * **Races** — unsynchronized write→read / write→write pairs on
//!   overlapping buffer ranges, with both offending instruction sites.
//! * **Static deadlocks** — wait cycles in the happens-before graph, and
//!   signal/wait count imbalances (waits that can never be satisfied).
//! * **Out-of-bounds accesses** — byte ranges past a buffer's registered
//!   size.
//! * **Orphan signals** — semaphores signalled but never waited on.
//! * **Unflushed port puts** — posted transfers with no completion
//!   guarantee before kernel exit.
//! * **Semantic divergence** — when the caller declares a
//!   [`CollectiveSpec`] (see [`analyze_collective`]), a symbolic
//!   provenance pass proves every member's output range holds exactly
//!   the contributions the collective demands, reporting the first
//!   divergent byte range as a missing / duplicated / misplaced / stale
//!   contribution with the instruction sites that produced it.
//!
//! The analysis is *sound for a single kernel launch over freshly-zeroed
//! synchronization cells*: every reported deadlock cycle and imbalance is
//! real under that assumption, and every happens-before edge it draws is
//! implied by the simulator's semantics. Race detection is exact for
//! plans where each synchronization cell has a single waiting thread
//! (true of all built-in algorithms); with multiple waiters the counted
//! rule keeps only guaranteed edges, so extra races may be reported but
//! ordered pairs are never misclassified as racing. Callers that reuse
//! channel state across launches (NCCL-style FIFO credits) should verify
//! the first launch only — see [`Checks::transport`].
//!
//! The dynamic counterpart lives in the `mscclpp` crate
//! ([`mscclpp::run_kernels_sanitized`]): a vector-clock sanitizer over a
//! concrete simulated execution. The static verifier and the sanitizer
//! agree on instruction sites, so a static race finding can be
//! cross-checked against a dynamic one.

mod error;
mod hb;
mod model;
pub mod mutate;
mod semantics;

pub use error::{Checks, Report, Site, VerifyError};
pub use semantics::{CollectiveKind, CollectiveSpec, SpecMember};

use hw::MemoryPool;
use mscclpp::Kernel;

fn analyze_inner(
    kernels: &[Kernel],
    pool: &MemoryPool,
    checks: &Checks,
    spec: Option<&CollectiveSpec>,
) -> Report {
    let model = model::extract(kernels);
    let mut report = Report {
        findings: hb::analyze(&model, pool, checks, spec),
    };
    report.sort();
    report
}

/// Analyzes a kernel batch with an explicit check selection and returns
/// every finding. Without a [`CollectiveSpec`] the semantic dataflow
/// pass has nothing to check against and is skipped even when
/// [`Checks::semantics`] is set — use [`analyze_collective`] to run it.
pub fn analyze_with(kernels: &[Kernel], pool: &MemoryPool, checks: &Checks) -> Report {
    analyze_inner(kernels, pool, checks, None)
}

/// Analyzes a kernel batch with all checks enabled.
pub fn analyze_kernels(kernels: &[Kernel], pool: &MemoryPool) -> Report {
    analyze_with(kernels, pool, &Checks::all())
}

/// Verifies a kernel batch with an explicit check selection, returning
/// the first (highest-priority) finding as an error.
// The Err is a rich diagnostic carrying both instruction sites; it is
// constructed once per aborted launch, never on the success path.
#[allow(clippy::result_large_err)]
pub fn verify_kernels_with(
    kernels: &[Kernel],
    pool: &MemoryPool,
    checks: &Checks,
) -> Result<(), VerifyError> {
    let report = analyze_with(kernels, pool, checks);
    match report.findings.into_iter().next() {
        None => Ok(()),
        Some(f) => Err(f),
    }
}

/// Verifies a kernel batch with all checks enabled.
#[allow(clippy::result_large_err)]
pub fn verify_kernels(kernels: &[Kernel], pool: &MemoryPool) -> Result<(), VerifyError> {
    verify_kernels_with(kernels, pool, &Checks::all())
}

/// Analyzes a kernel batch against a declared collective: all the checks
/// of [`analyze_with`], plus the semantic dataflow pass proving every
/// member's output range holds exactly the contributions `spec` demands
/// (gated on [`Checks::semantics`] and on the plan being race-free).
pub fn analyze_collective(
    kernels: &[Kernel],
    pool: &MemoryPool,
    checks: &Checks,
    spec: &CollectiveSpec,
) -> Report {
    analyze_inner(kernels, pool, checks, Some(spec))
}

/// Verifies a kernel batch against a declared collective, returning the
/// first (highest-priority) finding as an error.
#[allow(clippy::result_large_err)]
pub fn verify_collective(
    kernels: &[Kernel],
    pool: &MemoryPool,
    checks: &Checks,
    spec: &CollectiveSpec,
) -> Result<(), VerifyError> {
    let report = analyze_collective(kernels, pool, checks, spec);
    match report.findings.into_iter().next() {
        None => Ok(()),
        Some(f) => Err(f),
    }
}
