//! Extraction of the analysis IR from compiled kernel batches.
//!
//! Each thread block becomes one *thread* of events; each proxied port
//! channel endpoint contributes a *virtual proxy thread* whose events
//! carry the CPU proxy's copies, linked to the pushing block by explicit
//! cross edges. Every event records the byte ranges it touches, the
//! synchronization cells it increments, and (for waits) the cell and
//! threshold it blocks on.

use std::collections::HashMap;

use hw::BufferId;
use mscclpp::{Instr, Kernel};
use sim::CellId;

use crate::error::Site;

/// One byte-range access, half-open `[start, end)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Access {
    pub buf: BufferId,
    pub start: usize,
    pub end: usize,
    pub write: bool,
}

/// A counted wait: blocks until `cell >= needed`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WaitOn {
    pub cell: CellId,
    pub needed: u64,
}

/// Classification beyond the generic access/inc/wait fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Plain,
    /// Explicit signal instruction targeting a semaphore-class cell
    /// (orphan-signal candidate).
    Signal(CellId),
    /// Barrier arrival (increments the barrier cell).
    BarrierArrive(CellId),
    /// Barrier exit (ordered after every party's matching arrival).
    BarrierExit(CellId),
}

/// Semantic dataflow effect of one event — how it transforms symbolic
/// byte-range provenance. Extracted alongside the accesses so the
/// `semantics` pass can replay the plan in happens-before order without
/// re-decoding instructions. `None` on events that move no data
/// (waits, signals, barriers).
#[derive(Debug, Clone)]
pub(crate) enum SemOp {
    /// Fresh overwrite: `dst[..bytes] = src[..bytes]`
    /// (`Copy`/`MemPut`/`PortPut`/`RawPut`).
    Move {
        src: (BufferId, usize),
        dst: (BufferId, usize),
        bytes: usize,
    },
    /// Accumulate: `dst = op(dst, src)` — provenance multiset union
    /// (`Reduce`, `MemReadReduce`).
    Accum {
        src: (BufferId, usize),
        dst: (BufferId, usize),
        bytes: usize,
    },
    /// Three-address reduce: `dst = op(a, b)` — union of both operands,
    /// fresh overwrite of `dst` (`ReduceInto`, `RawReducePut`).
    Reduce2 {
        a: (BufferId, usize),
        b: (BufferId, usize),
        dst: (BufferId, usize),
        bytes: usize,
    },
    /// Multimem load-reduce over every member buffer (`SwitchReduce`).
    ReduceAll {
        srcs: Vec<(BufferId, usize)>,
        dst: (BufferId, usize),
        bytes: usize,
    },
    /// Multimem store into every member buffer (`SwitchBroadcast`).
    Replicate {
        src: (BufferId, usize),
        dsts: Vec<(BufferId, usize)>,
        bytes: usize,
    },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub site: Site,
    pub accesses: Vec<Access>,
    pub incs: Vec<CellId>,
    pub wait: Option<WaitOn>,
    pub kind: Kind,
    pub sem: Option<SemOp>,
}

impl Event {
    fn plain(site: Site) -> Event {
        Event {
            site,
            accesses: Vec::new(),
            incs: Vec::new(),
            wait: None,
            kind: Kind::Plain,
            sem: None,
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct Thread {
    pub events: Vec<Event>,
}

/// The extracted model of one kernel batch.
#[derive(Debug, Default)]
pub(crate) struct Model {
    pub threads: Vec<Thread>,
    /// Cross-thread happens-before edges beyond program order and wait
    /// matching: FIFO push → proxy processing, as `(from, to)` pairs of
    /// `(thread, event index)`.
    pub extra_edges: Vec<((usize, usize), (usize, usize))>,
    /// Human-readable cell names for rendering findings.
    pub cell_names: HashMap<CellId, String>,
    /// Parties per barrier cell.
    pub barriers: HashMap<CellId, usize>,
    /// Port puts with no completion guarantee before kernel exit.
    pub unflushed: Vec<Site>,
}

impl Model {
    fn name_cell(&mut self, cell: CellId, name: impl FnOnce() -> String) {
        self.cell_names.entry(cell).or_insert_with(name);
    }

    pub(crate) fn cell_name(&self, cell: CellId) -> String {
        self.cell_names
            .get(&cell)
            .cloned()
            .unwrap_or_else(|| format!("{cell:?}"))
    }
}

/// Per-(block, port endpoint) state while walking a stream.
#[derive(Debug, Default)]
struct PortState {
    /// Virtual proxy thread index for this endpoint/block pair.
    proxy: Option<usize>,
    /// Requests pushed so far by this block on this endpoint (puts and
    /// signals alike — the completion counter counts both).
    pushed: u64,
    /// Sites of puts not yet covered by a flush/signal barrier.
    dirty: Vec<Site>,
}

/// Extracts the analysis model from a kernel batch.
pub(crate) fn extract(kernels: &[Kernel]) -> Model {
    let mut m = Model::default();
    for k in kernels {
        for (tb, prog) in k.blocks.iter().enumerate() {
            let t = m.threads.len();
            m.threads.push(Thread::default());
            // Waits are counted per (thread, cell): the n-th wait needs n
            // increments. Exact for single-waiter cells (every built-in);
            // a sound under-approximation otherwise.
            let mut wait_counts: HashMap<CellId, u64> = HashMap::new();
            // Port endpoints this block pushes to, keyed by pushed-cell.
            let mut ports: HashMap<CellId, PortState> = HashMap::new();
            for (pc, instr) in prog.iter().enumerate() {
                let site = Site {
                    rank: k.rank,
                    tb,
                    pc,
                };
                let mut ev = Event::plain(site);
                match instr {
                    Instr::MemPut {
                        ch,
                        src_off,
                        dst_off,
                        bytes,
                        with_signal,
                    } => {
                        m.name_cell(ch.peer_arrival, || format!("mem_arrival@{}", ch.peer_rank));
                        ev.accesses.push(Access {
                            buf: ch.local_buf,
                            start: *src_off,
                            end: src_off + bytes,
                            write: false,
                        });
                        ev.accesses.push(Access {
                            buf: ch.remote_buf,
                            start: *dst_off,
                            end: dst_off + bytes,
                            write: true,
                        });
                        ev.incs.push(ch.peer_arrival);
                        if *with_signal {
                            m.name_cell(ch.peer_sem, || format!("mem_sem@{}", ch.peer_rank));
                            ev.incs.push(ch.peer_sem);
                        }
                        ev.sem = Some(SemOp::Move {
                            src: (ch.local_buf, *src_off),
                            dst: (ch.remote_buf, *dst_off),
                            bytes: *bytes,
                        });
                    }
                    Instr::MemSignal { ch } => {
                        m.name_cell(ch.peer_sem, || format!("mem_sem@{}", ch.peer_rank));
                        ev.incs.push(ch.peer_sem);
                        ev.kind = Kind::Signal(ch.peer_sem);
                    }
                    Instr::MemWait { ch } => {
                        m.name_cell(ch.my_sem, || format!("mem_sem@{}", ch.local_rank));
                        let n = bump(&mut wait_counts, ch.my_sem);
                        ev.wait = Some(WaitOn {
                            cell: ch.my_sem,
                            needed: n,
                        });
                    }
                    Instr::MemWaitData { ch } => {
                        m.name_cell(ch.my_arrival, || format!("mem_arrival@{}", ch.local_rank));
                        let n = bump(&mut wait_counts, ch.my_arrival);
                        ev.wait = Some(WaitOn {
                            cell: ch.my_arrival,
                            needed: n,
                        });
                    }
                    Instr::MemReadReduce {
                        ch,
                        remote_off,
                        local_buf,
                        local_off,
                        bytes,
                        ..
                    } => {
                        ev.accesses.push(Access {
                            buf: ch.remote_buf,
                            start: *remote_off,
                            end: remote_off + bytes,
                            write: false,
                        });
                        ev.accesses.push(Access {
                            buf: *local_buf,
                            start: *local_off,
                            end: local_off + bytes,
                            write: true,
                        });
                        ev.sem = Some(SemOp::Accum {
                            src: (ch.remote_buf, *remote_off),
                            dst: (*local_buf, *local_off),
                            bytes: *bytes,
                        });
                    }
                    Instr::PortPut {
                        ch,
                        src_off,
                        dst_off,
                        bytes,
                        with_signal,
                    } => {
                        m.name_cell(ch.completed_cell, || {
                            format!("port_completed@{}", ch.local_rank)
                        });
                        m.name_cell(ch.peer_arrival, || format!("port_arrival@{}", ch.peer_rank));
                        let state = ports.entry(ch.pushed_cell).or_default();
                        state.pushed += 1;
                        if *with_signal {
                            state.dirty.clear();
                        } else {
                            state.dirty.push(site);
                        }
                        // The proxy's copy runs on a virtual thread,
                        // ordered after the push by a cross edge; the
                        // pusher's later instructions are NOT ordered
                        // after it, which is what catches source-buffer
                        // reuse before a flush.
                        let mut proxy_ev = Event::plain(site);
                        proxy_ev.accesses.push(Access {
                            buf: ch.local_buf,
                            start: *src_off,
                            end: src_off + bytes,
                            write: false,
                        });
                        proxy_ev.accesses.push(Access {
                            buf: ch.remote_buf,
                            start: *dst_off,
                            end: dst_off + bytes,
                            write: true,
                        });
                        proxy_ev.incs.push(ch.completed_cell);
                        proxy_ev.incs.push(ch.peer_arrival);
                        if *with_signal {
                            m.name_cell(ch.peer_sem, || format!("port_sem@{}", ch.peer_rank));
                            proxy_ev.incs.push(ch.peer_sem);
                        }
                        proxy_ev.sem = Some(SemOp::Move {
                            src: (ch.local_buf, *src_off),
                            dst: (ch.remote_buf, *dst_off),
                            bytes: *bytes,
                        });
                        let push_idx = m.threads[t].events.len();
                        push_proxy(&mut m, state, t, push_idx, proxy_ev);
                    }
                    Instr::PortSignal { ch } => {
                        m.name_cell(ch.completed_cell, || {
                            format!("port_completed@{}", ch.local_rank)
                        });
                        m.name_cell(ch.peer_sem, || format!("port_sem@{}", ch.peer_rank));
                        let state = ports.entry(ch.pushed_cell).or_default();
                        state.pushed += 1;
                        // FIFO order: a signal behind earlier puts reaches
                        // the peer only after they complete.
                        state.dirty.clear();
                        let mut proxy_ev = Event::plain(site);
                        proxy_ev.incs.push(ch.completed_cell);
                        proxy_ev.incs.push(ch.peer_sem);
                        proxy_ev.kind = Kind::Signal(ch.peer_sem);
                        let push_idx = m.threads[t].events.len();
                        push_proxy(&mut m, state, t, push_idx, proxy_ev);
                    }
                    Instr::PortFlush { ch, .. } => {
                        let state = ports.entry(ch.pushed_cell).or_default();
                        state.dirty.clear();
                        if state.pushed > 0 {
                            m.name_cell(ch.completed_cell, || {
                                format!("port_completed@{}", ch.local_rank)
                            });
                            ev.wait = Some(WaitOn {
                                cell: ch.completed_cell,
                                needed: state.pushed,
                            });
                        }
                    }
                    Instr::PortWait { ch } => {
                        m.name_cell(ch.my_sem, || format!("port_sem@{}", ch.local_rank));
                        let n = bump(&mut wait_counts, ch.my_sem);
                        ev.wait = Some(WaitOn {
                            cell: ch.my_sem,
                            needed: n,
                        });
                    }
                    Instr::SwitchReduce {
                        ch,
                        src_off,
                        dst_buf,
                        dst_off,
                        bytes,
                        ..
                    } => {
                        for &(_, b) in ch.members.iter() {
                            ev.accesses.push(Access {
                                buf: b,
                                start: *src_off,
                                end: src_off + bytes,
                                write: false,
                            });
                        }
                        ev.accesses.push(Access {
                            buf: *dst_buf,
                            start: *dst_off,
                            end: dst_off + bytes,
                            write: true,
                        });
                        ev.sem = Some(SemOp::ReduceAll {
                            srcs: ch.members.iter().map(|&(_, b)| (b, *src_off)).collect(),
                            dst: (*dst_buf, *dst_off),
                            bytes: *bytes,
                        });
                    }
                    Instr::SwitchBroadcast {
                        ch,
                        src_buf,
                        src_off,
                        dst_off,
                        bytes,
                    } => {
                        ev.accesses.push(Access {
                            buf: *src_buf,
                            start: *src_off,
                            end: src_off + bytes,
                            write: false,
                        });
                        for &(_, b) in ch.members.iter() {
                            ev.accesses.push(Access {
                                buf: b,
                                start: *dst_off,
                                end: dst_off + bytes,
                                write: true,
                            });
                        }
                        ev.sem = Some(SemOp::Replicate {
                            src: (*src_buf, *src_off),
                            dsts: ch.members.iter().map(|&(_, b)| (b, *dst_off)).collect(),
                            bytes: *bytes,
                        });
                    }
                    Instr::Copy {
                        src,
                        src_off,
                        dst,
                        dst_off,
                        bytes,
                    } => {
                        ev.accesses.push(Access {
                            buf: *src,
                            start: *src_off,
                            end: src_off + bytes,
                            write: false,
                        });
                        ev.accesses.push(Access {
                            buf: *dst,
                            start: *dst_off,
                            end: dst_off + bytes,
                            write: true,
                        });
                        ev.sem = Some(SemOp::Move {
                            src: (*src, *src_off),
                            dst: (*dst, *dst_off),
                            bytes: *bytes,
                        });
                    }
                    Instr::Reduce {
                        src,
                        src_off,
                        dst,
                        dst_off,
                        bytes,
                        ..
                    } => {
                        ev.accesses.push(Access {
                            buf: *src,
                            start: *src_off,
                            end: src_off + bytes,
                            write: false,
                        });
                        ev.accesses.push(Access {
                            buf: *dst,
                            start: *dst_off,
                            end: dst_off + bytes,
                            write: true,
                        });
                        ev.sem = Some(SemOp::Accum {
                            src: (*src, *src_off),
                            dst: (*dst, *dst_off),
                            bytes: *bytes,
                        });
                    }
                    Instr::RawPut {
                        src,
                        src_off,
                        dst,
                        dst_off,
                        bytes,
                        notify,
                        ..
                    } => {
                        ev.accesses.push(Access {
                            buf: *src,
                            start: *src_off,
                            end: src_off + bytes,
                            write: false,
                        });
                        ev.accesses.push(Access {
                            buf: *dst,
                            start: *dst_off,
                            end: dst_off + bytes,
                            write: true,
                        });
                        if let Some(sem) = notify {
                            m.name_cell(sem.cell, || format!("sem@{}", sem.owner));
                            ev.incs.push(sem.cell);
                        }
                        ev.sem = Some(SemOp::Move {
                            src: (*src, *src_off),
                            dst: (*dst, *dst_off),
                            bytes: *bytes,
                        });
                    }
                    Instr::RawReducePut {
                        a,
                        a_off,
                        b,
                        b_off,
                        dst,
                        dst_off,
                        bytes,
                        notify,
                        ..
                    } => {
                        ev.accesses.push(Access {
                            buf: *a,
                            start: *a_off,
                            end: a_off + bytes,
                            write: false,
                        });
                        ev.accesses.push(Access {
                            buf: *b,
                            start: *b_off,
                            end: b_off + bytes,
                            write: false,
                        });
                        ev.accesses.push(Access {
                            buf: *dst,
                            start: *dst_off,
                            end: dst_off + bytes,
                            write: true,
                        });
                        if let Some(sem) = notify {
                            m.name_cell(sem.cell, || format!("sem@{}", sem.owner));
                            ev.incs.push(sem.cell);
                        }
                        ev.sem = Some(SemOp::Reduce2 {
                            a: (*a, *a_off),
                            b: (*b, *b_off),
                            dst: (*dst, *dst_off),
                            bytes: *bytes,
                        });
                    }
                    Instr::ReduceInto {
                        a,
                        a_off,
                        b,
                        b_off,
                        dst,
                        dst_off,
                        bytes,
                        ..
                    } => {
                        ev.accesses.push(Access {
                            buf: *a,
                            start: *a_off,
                            end: a_off + bytes,
                            write: false,
                        });
                        ev.accesses.push(Access {
                            buf: *b,
                            start: *b_off,
                            end: b_off + bytes,
                            write: false,
                        });
                        ev.accesses.push(Access {
                            buf: *dst,
                            start: *dst_off,
                            end: dst_off + bytes,
                            write: true,
                        });
                        ev.sem = Some(SemOp::Reduce2 {
                            a: (*a, *a_off),
                            b: (*b, *b_off),
                            dst: (*dst, *dst_off),
                            bytes: *bytes,
                        });
                    }
                    Instr::SemWait { sem } => {
                        m.name_cell(sem.cell, || format!("sem@{}", sem.owner));
                        let n = bump(&mut wait_counts, sem.cell);
                        ev.wait = Some(WaitOn {
                            cell: sem.cell,
                            needed: n,
                        });
                    }
                    Instr::SemSignal { sem } => {
                        m.name_cell(sem.cell, || format!("sem@{}", sem.owner));
                        ev.incs.push(sem.cell);
                        ev.kind = Kind::Signal(sem.cell);
                    }
                    Instr::Barrier { barrier } => {
                        m.name_cell(barrier.cell, || "barrier".to_owned());
                        m.barriers.insert(barrier.cell, barrier.parties);
                        // Split into an arrive event and an adjacent exit
                        // event: all-arrive-before-any-exit edges then
                        // never form spurious two-cycles through a single
                        // node.
                        ev.incs.push(barrier.cell);
                        ev.kind = Kind::BarrierArrive(barrier.cell);
                        m.threads[t].events.push(ev);
                        let mut exit = Event::plain(site);
                        exit.kind = Kind::BarrierExit(barrier.cell);
                        m.threads[t].events.push(exit);
                        continue;
                    }
                    Instr::Compute { .. } => continue,
                }
                m.threads[t].events.push(ev);
            }
            for state in ports.values() {
                m.unflushed.extend(state.dirty.iter().copied());
            }
        }
    }
    m.unflushed.sort();
    m
}

fn bump(counts: &mut HashMap<CellId, u64>, cell: CellId) -> u64 {
    let n = counts.entry(cell).or_insert(0);
    *n += 1;
    *n
}

/// Appends a proxy event to the endpoint's virtual thread (creating it on
/// first use) and records the push → proxy cross edge.
fn push_proxy(m: &mut Model, state: &mut PortState, block_t: usize, push_idx: usize, ev: Event) {
    let pt = *state.proxy.get_or_insert_with(|| {
        m.threads.push(Thread::default());
        m.threads.len() - 1
    });
    let pidx = m.threads[pt].events.len();
    m.threads[pt].events.push(ev);
    m.extra_edges.push(((block_t, push_idx), (pt, pidx)));
}
