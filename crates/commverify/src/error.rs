//! Typed findings produced by the verifier.

use std::error::Error as StdError;
use std::fmt;

use hw::{BufferId, Rank};

/// The site of one instruction: which rank, thread block, and program
/// counter it occupies in the kernel batch under analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// Issuing rank.
    pub rank: Rank,
    /// Thread block index within the rank's kernel.
    pub tb: usize,
    /// Instruction index within the block's stream.
    pub pc: usize,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/tb{}/pc{}", self.rank, self.tb, self.pc)
    }
}

/// Which checks to run. All are on by default; presets exist for
/// instruction styles where a check is structurally inapplicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checks {
    /// Buffer accesses within registered memory sizes.
    pub bounds: bool,
    /// Signal/wait imbalances and happens-before cycles (static deadlock).
    pub sync: bool,
    /// Unsynchronized conflicting accesses to overlapping ranges.
    pub races: bool,
    /// Explicit signals whose semaphore is never waited on.
    pub orphan_signals: bool,
    /// Port puts with no completion guarantee before kernel exit.
    pub unflushed_puts: bool,
    /// Semantic dataflow: the final provenance of every output range
    /// matches the declared [`crate::CollectiveSpec`]. Only runs when the
    /// caller supplies a spec (see [`crate::analyze_collective`]) and the
    /// plan is race-free (provenance is only well-defined then).
    pub semantics: bool,
}

impl Default for Checks {
    fn default() -> Checks {
        Checks {
            bounds: true,
            sync: true,
            races: true,
            orphan_signals: true,
            unflushed_puts: true,
            semantics: true,
        }
    }
}

impl Checks {
    /// Every check enabled (the default).
    pub fn all() -> Checks {
        Checks::default()
    }

    /// Preset for NCCL-style transports (`ncclsim`, `msccl`): orphan
    /// signals are expected there, because rendezvous *credit* semaphores
    /// are signalled on every receive but only waited on once the sender
    /// wraps the staging FIFO — a short transfer legitimately leaves them
    /// dangling. Semantics is off by default here because carried-over
    /// FIFO credits on re-launches make later batches' dataflow depend on
    /// state this pass cannot see; transports that verify their *first*
    /// launch opt back in with `Checks { semantics: true, ..Checks::transport() }`.
    pub fn transport() -> Checks {
        Checks {
            orphan_signals: false,
            semantics: false,
            ..Checks::default()
        }
    }
}

/// One finding of the static verifier.
///
/// Every variant names the offending instruction site(s); range-carrying
/// variants use half-open byte ranges `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Two instructions on different thread blocks access overlapping
    /// byte ranges of the same buffer, at least one writes, and no
    /// happens-before path orders them. Sites are ordered by
    /// (rank, tb, pc).
    Race {
        /// The lower-ordered offending site.
        first: Site,
        /// Byte range accessed by `first`.
        first_range: (usize, usize),
        /// Whether `first` writes.
        first_write: bool,
        /// The higher-ordered offending site.
        second: Site,
        /// Byte range accessed by `second`.
        second_range: (usize, usize),
        /// Whether `second` writes.
        second_write: bool,
        /// The buffer both ranges index into.
        buf: BufferId,
    },
    /// The happens-before graph contains a cycle: every site on `path`
    /// waits (directly or transitively) for the next, and the last for
    /// the first — a guaranteed deadlock in any execution.
    DeadlockCycle {
        /// The cycle, one site per hop, in happens-before order.
        path: Vec<Site>,
    },
    /// A wait needs more increments of its cell than the whole batch can
    /// ever produce — it blocks forever.
    SignalWaitImbalance {
        /// The starved wait.
        wait: Site,
        /// Human-readable name of the cell being waited on.
        cell: String,
        /// Increments the wait requires.
        needed: u64,
        /// Increments the batch produces in total.
        available: u64,
    },
    /// An access extends past the registered size of its buffer.
    OutOfBounds {
        /// The offending instruction.
        site: Site,
        /// The buffer accessed.
        buf: BufferId,
        /// The attempted byte range.
        range: (usize, usize),
        /// The buffer's registered size.
        len: usize,
    },
    /// An explicit signal targets a semaphore no instruction ever waits
    /// on — either dead code or a missing wait on the peer.
    OrphanSignal {
        /// The signalling instruction.
        site: Site,
        /// Human-readable name of the signalled cell.
        cell: String,
    },
    /// A port put without `with_signal` is never followed by a flush,
    /// port signal, or signalling put on the same channel: the kernel can
    /// exit with the transfer still queued and no way to observe its
    /// completion.
    UnflushedPortPut {
        /// The dangling put.
        site: Site,
    },
    /// Semantic dataflow: a live rank's contribution never reaches an
    /// output byte range the spec says must carry it.
    MissingContribution {
        /// Rank whose output diverges.
        rank: Rank,
        /// The output buffer.
        buf: BufferId,
        /// First divergent byte range.
        range: (usize, usize),
        /// The live rank whose contribution is absent.
        missing: Rank,
        /// Instruction that last wrote the range (`None`: the range still
        /// holds its initial in-place value).
        writer: Option<Site>,
        /// Instruction that delivered one contribution that *is* present
        /// (`None`: only the initial in-place value is present).
        present: Option<Site>,
    },
    /// Semantic dataflow: one rank's contribution lands in an output byte
    /// range more than the spec allows (double-reduce / double-gather).
    DuplicateContribution {
        /// Rank whose output diverges.
        rank: Rank,
        /// The output buffer.
        buf: BufferId,
        /// First divergent byte range.
        range: (usize, usize),
        /// The rank contributed more than once.
        dup: Rank,
        /// Instruction that delivered the first copy (`None`: it is the
        /// range's initial in-place value).
        first: Option<Site>,
        /// Instruction that delivered the second copy.
        second: Option<Site>,
    },
    /// Semantic dataflow: an output byte range holds data from the wrong
    /// source rank or the wrong source offset (a misrouted gather slot,
    /// shard, or broadcast).
    WrongPlacement {
        /// Rank whose output diverges.
        rank: Rank,
        /// The output buffer.
        buf: BufferId,
        /// First divergent byte range.
        range: (usize, usize),
        /// `(rank, source byte offset)` the spec expects at `range.0`.
        want: (Rank, usize),
        /// `(rank, source byte offset)` actually found there.
        got: (Rank, usize),
        /// Instruction that last wrote the range (`None`: initial value).
        writer: Option<Site>,
        /// Instruction that introduced the misplaced data (`None`: it is
        /// the range's initial in-place value).
        origin: Option<Site>,
    },
    /// Semantic dataflow: an output byte range ends the plan holding
    /// stale/uninitialized data — never written, or written from memory
    /// that was itself never initialized.
    StaleOutput {
        /// Rank whose output diverges.
        rank: Rank,
        /// The output buffer.
        buf: BufferId,
        /// First divergent byte range.
        range: (usize, usize),
        /// Instruction that last wrote the range (`None`: never written).
        writer: Option<Site>,
        /// Instruction where the staleness originated — the first op that
        /// read uninitialized memory (`None`: the range was never written,
        /// so there is no originating instruction).
        origin: Option<Site>,
    },
}

impl VerifyError {
    /// Ordering class used to sort a report: cheapest/most-fundamental
    /// findings first.
    pub(crate) fn class(&self) -> u8 {
        match self {
            VerifyError::OutOfBounds { .. } => 0,
            VerifyError::SignalWaitImbalance { .. } => 1,
            VerifyError::DeadlockCycle { .. } => 2,
            VerifyError::Race { .. } => 3,
            VerifyError::OrphanSignal { .. } => 4,
            VerifyError::UnflushedPortPut { .. } => 5,
            VerifyError::MissingContribution { .. } => 6,
            VerifyError::DuplicateContribution { .. } => 7,
            VerifyError::WrongPlacement { .. } => 8,
            VerifyError::StaleOutput { .. } => 9,
        }
    }

    /// A site to sort by within a class.
    pub(crate) fn anchor(&self) -> Site {
        let fallback = |rank: Rank| Site { rank, tb: 0, pc: 0 };
        match self {
            VerifyError::Race { first, .. } => *first,
            VerifyError::DeadlockCycle { path } => {
                path.iter().copied().min().unwrap_or(fallback(Rank(0)))
            }
            VerifyError::SignalWaitImbalance { wait, .. } => *wait,
            VerifyError::OutOfBounds { site, .. }
            | VerifyError::OrphanSignal { site, .. }
            | VerifyError::UnflushedPortPut { site } => *site,
            VerifyError::MissingContribution { rank, writer, .. } => {
                writer.unwrap_or(fallback(*rank))
            }
            VerifyError::DuplicateContribution {
                rank,
                first,
                second,
                ..
            } => first.or(*second).unwrap_or(fallback(*rank)),
            VerifyError::WrongPlacement { rank, writer, .. } => writer.unwrap_or(fallback(*rank)),
            VerifyError::StaleOutput {
                rank,
                writer,
                origin,
                ..
            } => writer.or(*origin).unwrap_or(fallback(*rank)),
        }
    }
}

/// Renders an optional site, with `none` standing in for "no
/// instruction" (an initial in-place value or never-written memory).
fn opt_site(s: &Option<Site>, none: &'static str) -> String {
    s.map_or_else(|| none.to_owned(), |s| s.to_string())
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Race {
                first,
                first_range,
                first_write,
                second,
                second_range,
                second_write,
                buf,
            } => write!(
                f,
                "unsynchronized {} at {} [{}, {}) races with {} at {} [{}, {}) on {:?}",
                if *first_write { "write" } else { "read" },
                first,
                first_range.0,
                first_range.1,
                if *second_write { "write" } else { "read" },
                second,
                second_range.0,
                second_range.1,
                buf,
            ),
            VerifyError::DeadlockCycle { path } => {
                write!(f, "deadlock: happens-before cycle ")?;
                for (i, s) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{s}")?;
                }
                if let Some(s) = path.first() {
                    write!(f, " -> {s}")?;
                }
                Ok(())
            }
            VerifyError::SignalWaitImbalance {
                wait,
                cell,
                needed,
                available,
            } => write!(
                f,
                "wait at {wait} on {cell} needs {needed} signal(s) but the batch produces {available}"
            ),
            VerifyError::OutOfBounds {
                site,
                buf,
                range,
                len,
            } => write!(
                f,
                "access at {site} touches {:?} [{}, {}) past its registered size {len}",
                buf, range.0, range.1
            ),
            VerifyError::OrphanSignal { site, cell } => {
                write!(f, "signal at {site} targets {cell}, which is never waited on")
            }
            VerifyError::UnflushedPortPut { site } => write!(
                f,
                "port put at {site} is never flushed or signalled before kernel exit"
            ),
            VerifyError::MissingContribution {
                rank,
                buf,
                range,
                missing,
                writer,
                present,
            } => write!(
                f,
                "semantic: {rank} output {:?} [{}, {}) is missing {missing}'s contribution \
                 (last write {}, a present contribution arrived via {})",
                buf,
                range.0,
                range.1,
                opt_site(writer, "never (initial value)"),
                opt_site(present, "the initial value"),
            ),
            VerifyError::DuplicateContribution {
                rank,
                buf,
                range,
                dup,
                first,
                second,
            } => write!(
                f,
                "semantic: {rank} output {:?} [{}, {}) counts {dup}'s contribution twice \
                 (first via {}, again via {})",
                buf,
                range.0,
                range.1,
                opt_site(first, "the initial value"),
                opt_site(second, "the initial value"),
            ),
            VerifyError::WrongPlacement {
                rank,
                buf,
                range,
                want,
                got,
                writer,
                origin,
            } => write!(
                f,
                "semantic: {rank} output {:?} [{}, {}) expects bytes of {} @ {}, holds {} @ {} \
                 (last write {}, misplaced data introduced at {})",
                buf,
                range.0,
                range.1,
                want.0,
                want.1,
                got.0,
                got.1,
                opt_site(writer, "never (initial value)"),
                opt_site(origin, "the initial value"),
            ),
            VerifyError::StaleOutput {
                rank,
                buf,
                range,
                writer,
                origin,
            } => write!(
                f,
                "semantic: {rank} output {:?} [{}, {}) ends the plan stale \
                 (last write {}, staleness originated at {})",
                buf,
                range.0,
                range.1,
                opt_site(writer, "never"),
                opt_site(origin, "uninitialized memory"),
            ),
        }
    }
}

impl StdError for VerifyError {}

impl From<VerifyError> for mscclpp::Error {
    fn from(e: VerifyError) -> mscclpp::Error {
        mscclpp::Error::Verification(e.to_string())
    }
}

/// Everything the verifier found in one kernel batch, sorted by class
/// (bounds, imbalance, deadlock, race, orphan, unflushed, then the
/// semantic classes: missing, duplicate, misplaced, stale) and then by
/// instruction site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings; empty for a clean plan.
    pub findings: Vec<VerifyError>,
}

impl Report {
    /// Whether no *enabled* check fired. The families a clean report
    /// covers are exactly the [`Checks`] that produced it: bounds,
    /// sync (imbalance + deadlock cycles), races, orphan signals,
    /// unflushed port puts, and — when a [`crate::CollectiveSpec`] was
    /// supplied — semantic dataflow (missing/duplicate/misplaced/stale
    /// output ranges). A clean report from a spec-less analysis says
    /// nothing about semantic correctness.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub(crate) fn sort(&mut self) {
        self.findings
            .sort_by_key(|f| (f.class(), f.anchor(), format!("{f}")));
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "clean");
        }
        for (i, e) in self.findings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}
