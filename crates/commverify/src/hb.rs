//! Happens-before graph construction and the checks that run over it.
//!
//! Nodes are the extracted events; edges are (a) program order within a
//! thread, (b) FIFO push → proxy processing, (c) signal → wait matching
//! under the counted-wait rule, and (d) barrier arrive → exit across all
//! parties. Cycle detection yields static deadlocks; a vector-clock pass
//! over the acyclic graph yields reachability for the race check.

use std::collections::{HashMap, HashSet};

use hw::MemoryPool;
use sim::{CellId, VClock};

use crate::error::{Checks, Site, VerifyError};
use crate::model::{Access, Kind, Model};
use crate::semantics::{self, CollectiveSpec};

/// Runs all enabled checks over an extracted model.
pub(crate) fn analyze(
    model: &Model,
    pool: &MemoryPool,
    checks: &Checks,
    spec: Option<&CollectiveSpec>,
) -> Vec<VerifyError> {
    let mut findings = Vec::new();
    let graph = Graph::build(model, checks, &mut findings);

    if checks.bounds {
        check_bounds(model, pool, &mut findings);
    }

    match graph.topo_order() {
        Ok(order) => {
            if checks.races {
                check_races(model, &graph, &order, &mut findings);
            }
            // The provenance pass replays one linearization; that final
            // state only speaks for *every* linearization when
            // conflicting accesses are ordered, so a racy plan skips
            // straight to its Race findings.
            let racy = findings
                .iter()
                .any(|f| matches!(f, VerifyError::Race { .. }));
            if checks.semantics && !racy {
                if let Some(spec) = spec {
                    let located: Vec<(usize, usize)> =
                        order.iter().map(|&id| graph.locate(id)).collect();
                    semantics::check(model, &located, spec, &mut findings);
                }
            }
        }
        Err(cycle) => {
            if checks.sync {
                findings.push(VerifyError::DeadlockCycle {
                    path: cycle.iter().map(|&id| graph.site(model, id)).collect(),
                });
            }
        }
    }

    if checks.orphan_signals {
        check_orphans(model, &mut findings);
    }
    if checks.unflushed_puts {
        for &site in &model.unflushed {
            findings.push(VerifyError::UnflushedPortPut { site });
        }
    }
    findings
}

/// The happens-before graph over globally-numbered events.
struct Graph {
    /// Event id of `(thread, 0)`; `offsets[threads.len()]` = total.
    offsets: Vec<usize>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Graph {
    fn id(&self, thread: usize, idx: usize) -> usize {
        self.offsets[thread] + idx
    }

    fn locate(&self, id: usize) -> (usize, usize) {
        let t = self.offsets.partition_point(|&o| o <= id) - 1;
        (t, id - self.offsets[t])
    }

    fn site(&self, model: &Model, id: usize) -> Site {
        let (t, i) = self.locate(id);
        model.threads[t].events[i].site
    }

    fn total(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    fn edge(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        self.succs[from].push(to);
        self.preds[to].push(from);
    }

    /// Builds every edge class; imbalance findings fall out of wait
    /// matching and are appended to `findings` directly (gated on
    /// `checks.sync`).
    fn build(model: &Model, checks: &Checks, findings: &mut Vec<VerifyError>) -> Graph {
        let mut offsets = Vec::with_capacity(model.threads.len() + 1);
        let mut total = 0;
        for t in &model.threads {
            offsets.push(total);
            total += t.events.len();
        }
        offsets.push(total);
        let mut g = Graph {
            offsets,
            succs: vec![Vec::new(); total],
            preds: vec![Vec::new(); total],
        };

        // (a) Program order.
        for (t, th) in model.threads.iter().enumerate() {
            for i in 1..th.events.len() {
                let a = g.id(t, i - 1);
                let b = g.id(t, i);
                g.edge(a, b);
            }
        }
        // (b) Push → proxy.
        for &((ft, fi), (tt, ti)) in &model.extra_edges {
            let a = g.id(ft, fi);
            let b = g.id(tt, ti);
            g.edge(a, b);
        }

        // Incrementers per cell, grouped by thread in program order.
        let mut incs: HashMap<CellId, HashMap<usize, Vec<usize>>> = HashMap::new();
        for (t, th) in model.threads.iter().enumerate() {
            for (i, ev) in th.events.iter().enumerate() {
                for &cell in &ev.incs {
                    incs.entry(cell)
                        .or_default()
                        .entry(t)
                        .or_default()
                        .push(g.id(t, i));
                }
            }
        }

        // (c) Counted waits. A wait needing n increments of cell c, where
        // thread u contributes m_u of the M total: if n > M the wait
        // starves (imbalance); otherwise thread u's o-th increment with
        // o = n - (M - m_u) must happen before the wait whenever o >= 1,
        // because even if every *other* thread delivers all of its
        // increments first, the threshold still needs u's o-th.
        for (t, th) in model.threads.iter().enumerate() {
            for (i, ev) in th.events.iter().enumerate() {
                let Some(w) = ev.wait else { continue };
                let empty = HashMap::new();
                let per_thread = incs.get(&w.cell).unwrap_or(&empty);
                let total_incs: u64 = per_thread.values().map(|v| v.len() as u64).sum();
                if w.needed > total_incs {
                    if checks.sync {
                        findings.push(VerifyError::SignalWaitImbalance {
                            wait: ev.site,
                            cell: model.cell_name(w.cell),
                            needed: w.needed,
                            available: total_incs,
                        });
                    }
                    continue;
                }
                let wait_id = g.id(t, i);
                for events in per_thread.values() {
                    let m_u = events.len() as u64;
                    let o = (w.needed + m_u).saturating_sub(total_incs);
                    if o >= 1 {
                        g.edge(events[(o - 1) as usize], wait_id);
                    }
                }
            }
        }

        // (d) Barriers: collect per-cell arrive/exit sequences per thread.
        let mut arrives: HashMap<CellId, HashMap<usize, Vec<usize>>> = HashMap::new();
        let mut exits: HashMap<CellId, HashMap<usize, Vec<usize>>> = HashMap::new();
        for (t, th) in model.threads.iter().enumerate() {
            for (i, ev) in th.events.iter().enumerate() {
                match ev.kind {
                    Kind::BarrierArrive(c) => arrives
                        .entry(c)
                        .or_default()
                        .entry(t)
                        .or_default()
                        .push(g.id(t, i)),
                    Kind::BarrierExit(c) => exits
                        .entry(c)
                        .or_default()
                        .entry(t)
                        .or_default()
                        .push(g.id(t, i)),
                    _ => {}
                }
            }
        }
        for (cell, per_thread) in &arrives {
            let parties = *model.barriers.get(cell).unwrap_or(&0);
            let rounds: HashSet<usize> = per_thread.values().map(Vec::len).collect();
            if per_thread.len() != parties || rounds.len() != 1 {
                if checks.sync {
                    let first = per_thread
                        .values()
                        .filter_map(|v| v.first())
                        .min()
                        .copied()
                        .unwrap_or(0);
                    findings.push(VerifyError::SignalWaitImbalance {
                        wait: g.site(model, first),
                        cell: model.cell_name(*cell),
                        needed: parties as u64,
                        available: per_thread.len() as u64,
                    });
                }
                continue;
            }
            // Round k exits only once every party's round-k arrival has
            // landed (the threshold is k * parties, and rounds alternate
            // strictly), so each round is a full cross-product.
            let nrounds = rounds.into_iter().next().unwrap_or(0);
            let empty = HashMap::new();
            let ex = exits.get(cell).unwrap_or(&empty);
            for r in 0..nrounds {
                for av in per_thread.values() {
                    for ev in ex.values() {
                        if let (Some(&a), Some(&e)) = (av.get(r), ev.get(r)) {
                            g.edge(a, e);
                        }
                    }
                }
            }
        }
        g
    }

    /// Kahn's algorithm; `Err` carries one happens-before cycle.
    fn topo_order(&self) -> Result<Vec<usize>, Vec<usize>> {
        let total = self.total();
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut order = Vec::with_capacity(total);
        let mut ready: Vec<usize> = (0..total).filter(|&i| indeg[i] == 0).collect();
        while let Some(id) = ready.pop() {
            order.push(id);
            for &s in &self.succs[id] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if order.len() == total {
            return Ok(order);
        }
        // Every unresolved node keeps an unresolved predecessor; walking
        // predecessors inside that set must revisit a node, closing a
        // cycle.
        let stuck: HashSet<usize> = (0..total).filter(|&i| indeg[i] > 0).collect();
        let start = *stuck.iter().min().expect("cycle is non-empty");
        let mut seen: HashMap<usize, usize> = HashMap::new();
        let mut path = vec![start];
        let mut cur = start;
        loop {
            if let Some(&at) = seen.get(&cur) {
                let mut cycle: Vec<usize> = path[at..].to_vec();
                // The walk followed predecessors, so reverse into
                // happens-before order.
                cycle.pop();
                cycle.reverse();
                return Err(cycle);
            }
            seen.insert(cur, path.len() - 1);
            let next = self.preds[cur]
                .iter()
                .copied()
                .find(|p| stuck.contains(p))
                .expect("stuck node has a stuck predecessor");
            path.push(next);
            cur = next;
        }
    }
}

fn check_bounds(model: &Model, pool: &MemoryPool, findings: &mut Vec<VerifyError>) {
    let mut seen = HashSet::new();
    for th in &model.threads {
        for ev in &th.events {
            for a in &ev.accesses {
                let len = pool.len(a.buf);
                if a.end > len && seen.insert((ev.site, a.buf, a.start, a.end)) {
                    findings.push(VerifyError::OutOfBounds {
                        site: ev.site,
                        buf: a.buf,
                        range: (a.start, a.end),
                        len,
                    });
                }
            }
        }
    }
}

fn check_orphans(model: &Model, findings: &mut Vec<VerifyError>) {
    let waited: HashSet<CellId> = model
        .threads
        .iter()
        .flat_map(|t| t.events.iter())
        .filter_map(|e| e.wait.map(|w| w.cell))
        .collect();
    for th in &model.threads {
        for ev in &th.events {
            if let Kind::Signal(cell) = ev.kind {
                if !waited.contains(&cell) {
                    findings.push(VerifyError::OrphanSignal {
                        site: ev.site,
                        cell: model.cell_name(cell),
                    });
                }
            }
        }
    }
}

fn check_races(model: &Model, g: &Graph, order: &[usize], findings: &mut Vec<VerifyError>) {
    // Vector clock per event, own component = index-in-thread + 1:
    // event (u, i) happens before (v, j) iff clock[(v, j)][u] >= i + 1.
    let mut clocks: Vec<VClock> = vec![VClock::new(); g.total()];
    for &id in order {
        let (t, i) = g.locate(id);
        let mut c = VClock::new();
        for &p in &g.preds[id] {
            c.join(&clocks[p]);
        }
        c.set(t, (i + 1) as u64);
        clocks[id] = c;
    }

    struct Rec<'a> {
        id: usize,
        thread: usize,
        idx: usize,
        site: Site,
        acc: &'a Access,
    }
    let mut by_buf: HashMap<hw::BufferId, Vec<Rec<'_>>> = HashMap::new();
    for (t, th) in model.threads.iter().enumerate() {
        for (i, ev) in th.events.iter().enumerate() {
            for a in &ev.accesses {
                by_buf.entry(a.buf).or_default().push(Rec {
                    id: g.id(t, i),
                    thread: t,
                    idx: i,
                    site: ev.site,
                    acc: a,
                });
            }
        }
    }

    let mut reported = HashSet::new();
    for (buf, recs) in &by_buf {
        for (n, a) in recs.iter().enumerate() {
            for b in &recs[n + 1..] {
                if a.thread == b.thread
                    || (!a.acc.write && !b.acc.write)
                    || a.acc.end <= b.acc.start
                    || b.acc.end <= a.acc.start
                {
                    continue;
                }
                let a_before_b = clocks[b.id].get(a.thread) >= (a.idx + 1) as u64;
                let b_before_a = clocks[a.id].get(b.thread) >= (b.idx + 1) as u64;
                if a_before_b || b_before_a {
                    continue;
                }
                let (x, y) = if a.site <= b.site { (a, b) } else { (b, a) };
                if reported.insert((x.site, y.site, *buf)) {
                    findings.push(VerifyError::Race {
                        first: x.site,
                        first_range: (x.acc.start, x.acc.end),
                        first_write: x.acc.write,
                        second: y.site,
                        second_range: (y.acc.start, y.acc.end),
                        second_write: y.acc.write,
                        buf: *buf,
                    });
                }
            }
        }
    }
}
