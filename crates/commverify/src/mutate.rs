//! Plan-mutation harness: proves the prover.
//!
//! A verifier that accepts every correct plan is only half the story —
//! the other half is that it *rejects* broken ones. This module applies
//! seeded, deterministic, semantics-breaking edits to a verified kernel
//! batch; the test driver (`tests/mutation.rs`) then re-analyzes every
//! mutant and asserts a 100% kill rate, naming any survivor. A mutant
//! counts as killed by *any* finding class: dropping a signalling put is
//! legitimately caught as a sync imbalance before the provenance pass
//! ever runs, and the driver records which class did the killing.
//!
//! Five operators, mirroring the failure modes hand-written plans
//! actually exhibit:
//!
//! | operator              | edit                                        |
//! |-----------------------|---------------------------------------------|
//! | `drop_put`            | delete one data-carrying put                |
//! | `retarget_reduce_src` | shift one reduction's source range          |
//! | `swap_put_dsts`       | swap the destination offsets of two puts    |
//! | `duplicate_reduce`    | apply one accumulating reduce twice         |
//! | `skip_tail_slice`     | halve the bytes of one block's last data op |
//!
//! Operators only target instructions where the edit is guaranteed to
//! change the computed function (e.g. `duplicate_reduce` skips
//! overwrite-semantics reduces, which are idempotent), so every
//! generated mutant is a true negative — survivors are verifier bugs,
//! not equivalent mutants.

use mscclpp::{Instr, Kernel};

/// One mutated kernel batch, tagged with how it was broken.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// Operator that produced it (one of [`OPERATORS`]).
    pub operator: &'static str,
    /// Human-readable description of the exact edit, for survivor
    /// reports.
    pub name: String,
    /// The mutated batch.
    pub kernels: Vec<Kernel>,
}

/// Every mutation operator, in application order.
pub const OPERATORS: [&str; 5] = [
    "drop_put",
    "retarget_reduce_src",
    "swap_put_dsts",
    "duplicate_reduce",
    "skip_tail_slice",
];

/// Deterministic splitmix64 step.
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn pick(seed: &mut u64, n: usize) -> usize {
    (next(seed) % n as u64) as usize
}

/// Location of one instruction in a batch.
type Loc = (usize, usize, usize);

fn sites(kernels: &[Kernel], eligible: impl Fn(&Instr) -> bool) -> Vec<Loc> {
    let mut out = Vec::new();
    for (k, kn) in kernels.iter().enumerate() {
        for (b, blk) in kn.blocks.iter().enumerate() {
            for (i, ins) in blk.iter().enumerate() {
                if eligible(ins) {
                    out.push((k, b, i));
                }
            }
        }
    }
    out
}

fn is_data_put(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::MemPut { .. } | Instr::PortPut { .. } | Instr::RawPut { .. }
    )
}

fn is_data_op(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::MemPut { .. }
            | Instr::PortPut { .. }
            | Instr::RawPut { .. }
            | Instr::MemReadReduce { .. }
            | Instr::SwitchReduce { .. }
            | Instr::SwitchBroadcast { .. }
            | Instr::Copy { .. }
            | Instr::Reduce { .. }
            | Instr::RawReducePut { .. }
            | Instr::ReduceInto { .. }
    )
}

fn loc_name(kernels: &[Kernel], (k, b, i): Loc) -> String {
    format!(
        "rank {} tb {} pc {} ({})",
        kernels[k].rank.0,
        b,
        i,
        kernels[k].blocks[b][i].mnemonic()
    )
}

/// Deletes one data-carrying put.
fn drop_put(kernels: &[Kernel], seed: &mut u64) -> Option<Mutant> {
    let cands = sites(kernels, is_data_put);
    if cands.is_empty() {
        return None;
    }
    let loc = cands[pick(seed, cands.len())];
    let name = format!("drop_put: delete {}", loc_name(kernels, loc));
    let mut kernels = kernels.to_vec();
    kernels[loc.0].blocks[loc.1].remove(loc.2);
    Some(Mutant {
        operator: "drop_put",
        name,
        kernels,
    })
}

/// Shifts one reduction's source range by its own length, so it folds
/// in the wrong bytes (or reads past the live data).
fn retarget_reduce_src(kernels: &[Kernel], seed: &mut u64) -> Option<Mutant> {
    let cands = sites(kernels, |ins| {
        matches!(
            ins,
            Instr::Reduce { .. }
                | Instr::MemReadReduce { .. }
                | Instr::ReduceInto { .. }
                | Instr::RawReducePut { .. }
                | Instr::SwitchReduce { .. }
        )
    });
    if cands.is_empty() {
        return None;
    }
    let loc = cands[pick(seed, cands.len())];
    let name = format!(
        "retarget_reduce_src: shift source of {}",
        loc_name(kernels, loc)
    );
    let mut kernels = kernels.to_vec();
    match &mut kernels[loc.0].blocks[loc.1][loc.2] {
        Instr::Reduce { src_off, bytes, .. } => *src_off += *bytes,
        Instr::MemReadReduce {
            remote_off, bytes, ..
        } => *remote_off += *bytes,
        Instr::ReduceInto { a_off, bytes, .. } => *a_off += *bytes,
        Instr::RawReducePut { a_off, bytes, .. } => *a_off += *bytes,
        Instr::SwitchReduce { src_off, bytes, .. } => *src_off += *bytes,
        _ => unreachable!(),
    }
    Some(Mutant {
        operator: "retarget_reduce_src",
        name,
        kernels,
    })
}

fn put_dst_off(ins: &Instr) -> Option<usize> {
    match ins {
        Instr::MemPut { dst_off, .. }
        | Instr::PortPut { dst_off, .. }
        | Instr::RawPut { dst_off, .. } => Some(*dst_off),
        _ => None,
    }
}

fn set_put_dst_off(ins: &mut Instr, v: usize) {
    match ins {
        Instr::MemPut { dst_off, .. }
        | Instr::PortPut { dst_off, .. }
        | Instr::RawPut { dst_off, .. } => *dst_off = v,
        _ => unreachable!(),
    }
}

fn put_variant(ins: &Instr) -> u8 {
    match ins {
        Instr::MemPut { .. } => 0,
        Instr::PortPut { .. } => 1,
        Instr::RawPut { .. } => 2,
        _ => u8::MAX,
    }
}

/// Swaps the destination offsets of two same-variant puts with distinct
/// destinations, crossing their chunks.
fn swap_put_dsts(kernels: &[Kernel], seed: &mut u64) -> Option<Mutant> {
    let cands = sites(kernels, is_data_put);
    if cands.len() < 2 {
        return None;
    }
    // Seeded starting point, then the first partner that actually
    // changes the dataflow.
    let start = pick(seed, cands.len());
    for n in 0..cands.len() {
        let a = cands[(start + n) % cands.len()];
        let ia = &kernels[a.0].blocks[a.1][a.2];
        for &b in &cands {
            if b == a {
                continue;
            }
            let ib = &kernels[b.0].blocks[b.1][b.2];
            if put_variant(ia) != put_variant(ib) || put_dst_off(ia) == put_dst_off(ib) {
                continue;
            }
            let name = format!(
                "swap_put_dsts: cross {} with {}",
                loc_name(kernels, a),
                loc_name(kernels, b)
            );
            let (da, db) = (put_dst_off(ia).unwrap(), put_dst_off(ib).unwrap());
            let mut kernels = kernels.to_vec();
            set_put_dst_off(&mut kernels[a.0].blocks[a.1][a.2], db);
            set_put_dst_off(&mut kernels[b.0].blocks[b.1][b.2], da);
            return Some(Mutant {
                operator: "swap_put_dsts",
                name,
                kernels,
            });
        }
    }
    None
}

/// Applies one accumulating (`dst = op(dst, src)`) reduce twice.
/// Overwrite-semantics reduces (`ReduceInto`, `RawReducePut`,
/// `SwitchReduce`) are idempotent and would yield equivalent mutants, so
/// only true accumulators are targeted.
fn duplicate_reduce(kernels: &[Kernel], seed: &mut u64) -> Option<Mutant> {
    let cands = sites(kernels, |ins| {
        matches!(ins, Instr::Reduce { .. } | Instr::MemReadReduce { .. })
    });
    if cands.is_empty() {
        return None;
    }
    let loc = cands[pick(seed, cands.len())];
    let name = format!("duplicate_reduce: repeat {}", loc_name(kernels, loc));
    let mut kernels = kernels.to_vec();
    let dup = kernels[loc.0].blocks[loc.1][loc.2].clone();
    kernels[loc.0].blocks[loc.1].insert(loc.2 + 1, dup);
    Some(Mutant {
        operator: "duplicate_reduce",
        name,
        kernels,
    })
}

/// Halves the byte count of one block's *last* data-moving instruction —
/// the tail of that rank's slice never arrives.
fn skip_tail_slice(kernels: &[Kernel], seed: &mut u64) -> Option<Mutant> {
    // Last data op of each non-empty block, where halving to 4-byte
    // alignment still changes the transfer.
    let mut cands: Vec<Loc> = Vec::new();
    for (k, kn) in kernels.iter().enumerate() {
        for (b, blk) in kn.blocks.iter().enumerate() {
            if let Some(i) = blk.iter().rposition(is_data_op) {
                if instr_bytes(&blk[i]) >= 8 {
                    cands.push((k, b, i));
                }
            }
        }
    }
    if cands.is_empty() {
        return None;
    }
    let loc = cands[pick(seed, cands.len())];
    let name = format!("skip_tail_slice: halve {}", loc_name(kernels, loc));
    let mut kernels = kernels.to_vec();
    halve_bytes(&mut kernels[loc.0].blocks[loc.1][loc.2]);
    Some(Mutant {
        operator: "skip_tail_slice",
        name,
        kernels,
    })
}

fn instr_bytes(ins: &Instr) -> usize {
    match ins {
        Instr::MemPut { bytes, .. }
        | Instr::PortPut { bytes, .. }
        | Instr::RawPut { bytes, .. }
        | Instr::MemReadReduce { bytes, .. }
        | Instr::SwitchReduce { bytes, .. }
        | Instr::SwitchBroadcast { bytes, .. }
        | Instr::Copy { bytes, .. }
        | Instr::Reduce { bytes, .. }
        | Instr::RawReducePut { bytes, .. }
        | Instr::ReduceInto { bytes, .. } => *bytes,
        _ => 0,
    }
}

fn halve_bytes(ins: &mut Instr) {
    match ins {
        Instr::MemPut { bytes, .. }
        | Instr::PortPut { bytes, .. }
        | Instr::RawPut { bytes, .. }
        | Instr::MemReadReduce { bytes, .. }
        | Instr::SwitchReduce { bytes, .. }
        | Instr::SwitchBroadcast { bytes, .. }
        | Instr::Copy { bytes, .. }
        | Instr::Reduce { bytes, .. }
        | Instr::RawReducePut { bytes, .. }
        | Instr::ReduceInto { bytes, .. } => {
            // Keep element alignment: LL/HB payloads are 4-byte
            // granular, and a misaligned tail would trip bounds checks
            // before semantics get a say.
            *bytes = (*bytes / 2) & !3;
            if *bytes == 0 {
                *bytes = 4;
            }
        }
        _ => {}
    }
}

/// Applies one operator by name at a seeded site. Returns `None` when
/// the batch has no eligible instruction for it.
pub fn mutate(kernels: &[Kernel], operator: &str, seed: u64) -> Option<Mutant> {
    let mut s = seed ^ 0xc0ff_ee00_dead_beef;
    match operator {
        "drop_put" => drop_put(kernels, &mut s),
        "retarget_reduce_src" => retarget_reduce_src(kernels, &mut s),
        "swap_put_dsts" => swap_put_dsts(kernels, &mut s),
        "duplicate_reduce" => duplicate_reduce(kernels, &mut s),
        "skip_tail_slice" => skip_tail_slice(kernels, &mut s),
        _ => panic!("unknown mutation operator {operator:?}"),
    }
}

/// Generates one mutant per applicable operator at the given seed.
pub fn mutants(kernels: &[Kernel], seed: u64) -> Vec<Mutant> {
    OPERATORS
        .iter()
        .filter_map(|op| mutate(kernels, op, seed))
        .collect()
}
