//! Semantic dataflow pass: proves a compiled plan *computes its
//! collective*, not merely that it is race- and deadlock-free.
//!
//! The pass replays the extracted events in one happens-before-consistent
//! linearization, tracking **symbolic provenance** per byte range: every
//! range of every touched buffer holds an abstract multiset of
//! `(source member, source byte offset)` contribution terms. Data-moving
//! ops transform the state —
//!
//! * `Move` (Copy/MemPut/PortPut/RawPut) overwrites the destination with
//!   the source's terms, shifted to the new offset;
//! * `Accum` (Reduce/MemReadReduce) unions the source's terms into the
//!   destination;
//! * `Reduce2` (ReduceInto/RawReducePut) overwrites the destination with
//!   the union of both operands;
//! * `ReduceAll` (SwitchReduce) overwrites with the union over every
//!   switch member;
//! * `Replicate` (SwitchBroadcast) moves into every member.
//!
//! Because the race check runs first and the pass only executes on
//! race-free plans, every happens-before-consistent linearization yields
//! the same final state on every byte that any single linearization
//! defines — conflicting accesses are ordered, and non-conflicting ops
//! commute. The final state of each member's output range is then checked
//! against the declared [`CollectiveSpec`]; the first divergent byte
//! range per member becomes a typed finding
//! ([`VerifyError::MissingContribution`] /
//! [`VerifyError::DuplicateContribution`] /
//! [`VerifyError::WrongPlacement`] / [`VerifyError::StaleOutput`]).
//!
//! Reads of bytes no member input covers produce *stale* values, which
//! are absorbing under reduction — a plan that folds uninitialized
//! scratch into an output surfaces as [`VerifyError::StaleOutput`] with
//! the site where the staleness originated.

use std::collections::HashMap;
use std::rc::Rc;

use hw::{BufferId, Rank};

use crate::error::{Site, VerifyError};
use crate::model::{Model, SemOp};

/// One participating rank of a [`CollectiveSpec`]: its rank id and the
/// buffers the collective's contract is stated over. Member *position*
/// (index in the spec's sorted member list) is the unit shard/slot
/// numbering is expressed in, which is what makes the same spec type
/// cover full worlds and shrunken position-renumbered survivor groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecMember {
    /// The member's global rank.
    pub rank: Rank,
    /// Buffer holding this member's contribution.
    pub input: BufferId,
    /// Buffer the collective's result contract is checked on.
    pub output: BufferId,
}

/// Which collective the plan claims to compute, with the byte-level
/// layout contract for each member's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Every member's output `[0, bytes)` carries **exactly one**
    /// contribution from **every** member, byte-aligned (output byte `i`
    /// reduces the members' input bytes `i`).
    AllReduce {
        /// Per-member contribution size.
        bytes: usize,
    },
    /// Member `s`'s input `[0, bytes)` lands verbatim at every member's
    /// output slot `[s*bytes, (s+1)*bytes)`.
    AllGather {
        /// Per-member contribution size.
        bytes: usize,
    },
    /// Member `j`'s output `[0, shards[j].1)` carries exactly one
    /// contribution from every member, drawn from input bytes
    /// `[shards[j].0, shards[j].0 + shards[j].1)`.
    ReduceScatter {
        /// Bytes of every member's (full) input contribution.
        input_bytes: usize,
        /// `(input byte offset, length)` of each member position's shard.
        shards: Vec<(usize, usize)>,
    },
    /// The root member's input `[0, bytes)` lands verbatim at every
    /// member's output `[0, bytes)`.
    Broadcast {
        /// Message size.
        bytes: usize,
        /// Root's *position* in the member list.
        root: usize,
    },
    /// Member `i`'s input chunk `j` (`[j*bytes, (j+1)*bytes)`) lands at
    /// member `j`'s output chunk `i`.
    AllToAll {
        /// Per-pair chunk size.
        bytes: usize,
    },
}

/// What a kernel batch is supposed to compute: the participating members
/// (in position order) and the collective's byte-level output contract.
///
/// Passed to [`crate::analyze_collective`] / [`crate::verify_collective`];
/// the semantic pass initializes each member's input range with a fresh
/// provenance term and checks each member's output range against the
/// declared layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveSpec {
    /// Participants in position order (shrunken groups: sorted survivors).
    pub members: Vec<SpecMember>,
    /// The declared collective and its layout parameters.
    pub kind: CollectiveKind,
}

impl CollectiveSpec {
    /// AllReduce of `bytes` per member.
    pub fn all_reduce(members: Vec<SpecMember>, bytes: usize) -> CollectiveSpec {
        CollectiveSpec {
            members,
            kind: CollectiveKind::AllReduce { bytes },
        }
    }

    /// AllGather of `bytes` per member into position-ordered output slots.
    pub fn all_gather(members: Vec<SpecMember>, bytes: usize) -> CollectiveSpec {
        CollectiveSpec {
            members,
            kind: CollectiveKind::AllGather { bytes },
        }
    }

    /// ReduceScatter of an `input_bytes` contribution per member, with an
    /// explicit `(input offset, length)` shard per member position.
    pub fn reduce_scatter(
        members: Vec<SpecMember>,
        input_bytes: usize,
        shards: Vec<(usize, usize)>,
    ) -> CollectiveSpec {
        CollectiveSpec {
            members,
            kind: CollectiveKind::ReduceScatter {
                input_bytes,
                shards,
            },
        }
    }

    /// Broadcast of `bytes` from the member at position `root`.
    pub fn broadcast(members: Vec<SpecMember>, bytes: usize, root: usize) -> CollectiveSpec {
        CollectiveSpec {
            members,
            kind: CollectiveKind::Broadcast { bytes, root },
        }
    }

    /// AllToAll with a `bytes` chunk per (source, destination) pair.
    pub fn all_to_all(members: Vec<SpecMember>, bytes: usize) -> CollectiveSpec {
        CollectiveSpec {
            members,
            kind: CollectiveKind::AllToAll { bytes },
        }
    }

    /// How many leading bytes of each member's input buffer carry live
    /// contribution data under this spec.
    fn input_bytes(&self) -> usize {
        match &self.kind {
            CollectiveKind::AllReduce { bytes }
            | CollectiveKind::AllGather { bytes }
            | CollectiveKind::Broadcast { bytes, .. } => *bytes,
            CollectiveKind::ReduceScatter { input_bytes, .. } => *input_bytes,
            CollectiveKind::AllToAll { bytes } => bytes * self.members.len(),
        }
    }
}

/// One provenance term: "source member `src`'s input byte `p + delta`",
/// for the byte at absolute buffer offset `p`. `site` is the instruction
/// that first moved the term out of its source input (`None` while it
/// still sits there untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Term {
    src: u32,
    delta: i64,
    site: Option<Site>,
}

/// An interned multiset of terms, sorted by `(src, delta, site)`.
#[derive(Debug, PartialEq, Eq)]
struct Value {
    terms: Vec<Term>,
}

/// The value of one segment: live data with provenance, or stale
/// (uninitialized, or derived from uninitialized memory). `origin` is
/// the first instruction that read uninitialized bytes (`None`: the
/// range was simply never written).
#[derive(Debug, Clone)]
enum SegVal {
    Stale { origin: Option<Site> },
    Data(Rc<Value>),
}

/// One maximal same-value byte range of a buffer, `[start, end)`.
#[derive(Debug, Clone)]
struct Seg {
    start: usize,
    end: usize,
    /// Last instruction that wrote the range (`None`: initial value).
    writer: Option<Site>,
    val: SegVal,
}

/// Per-buffer interval maps plus reused scratch, sized once and carried
/// across every op so the hot loop is allocation-lean even on
/// 64–128-rank worlds.
struct State {
    bufs: HashMap<BufferId, Vec<Seg>>,
    /// Scratch for the union of two piece lists.
    merged: Vec<Seg>,
}

impl State {
    fn new(spec: &CollectiveSpec) -> State {
        let mut bufs: HashMap<BufferId, Vec<Seg>> = HashMap::with_capacity(spec.members.len() * 3);
        let fresh = spec.input_bytes();
        for (pos, m) in spec.members.iter().enumerate() {
            // In-place collectives alias input and output; a single fresh
            // segment covers both roles.
            bufs.entry(m.input).or_default().push(Seg {
                start: 0,
                end: fresh,
                writer: None,
                val: SegVal::Data(Rc::new(Value {
                    terms: vec![Term {
                        src: pos as u32,
                        delta: 0,
                        site: None,
                    }],
                })),
            });
        }
        State {
            bufs,
            merged: Vec::new(),
        }
    }

    /// Copies the pieces covering `[off, off+len)` of `buf` into `out`,
    /// in *relative* coordinates `[0, len)`. Gaps surface as stale
    /// pieces with no writer and no origin.
    fn read_into(&self, buf: BufferId, off: usize, len: usize, out: &mut Vec<Seg>) {
        out.clear();
        let end = off + len;
        let mut cursor = off;
        if let Some(segs) = self.bufs.get(&buf) {
            for s in segs {
                if s.end <= off {
                    continue;
                }
                if s.start >= end {
                    break;
                }
                let lo = s.start.max(off);
                let hi = s.end.min(end);
                if lo > cursor {
                    out.push(Seg {
                        start: cursor - off,
                        end: lo - off,
                        writer: None,
                        val: SegVal::Stale { origin: None },
                    });
                }
                out.push(Seg {
                    start: lo - off,
                    end: hi - off,
                    writer: s.writer,
                    val: s.val.clone(),
                });
                cursor = hi;
            }
        }
        if cursor < end {
            out.push(Seg {
                start: cursor - off,
                end: end - off,
                writer: None,
                val: SegVal::Stale { origin: None },
            });
        }
    }

    /// Replaces `[off, off+len)` of `buf` with `pieces` (relative
    /// coordinates), truncating whatever the range previously held.
    fn write(&mut self, buf: BufferId, off: usize, len: usize, pieces: &[Seg]) {
        let end = off + len;
        let segs = self.bufs.entry(buf).or_default();
        let mut next: Vec<Seg> = Vec::with_capacity(segs.len() + pieces.len() + 2);
        let mut inserted = false;
        for s in segs.drain(..) {
            if s.end <= off || s.start >= end {
                if !inserted && s.start >= end {
                    for p in pieces {
                        next.push(Seg {
                            start: p.start + off,
                            end: p.end + off,
                            writer: p.writer,
                            val: p.val.clone(),
                        });
                    }
                    inserted = true;
                }
                next.push(s);
                continue;
            }
            // Overlapping: keep the non-overlapping flanks.
            if s.start < off {
                next.push(Seg {
                    start: s.start,
                    end: off,
                    writer: s.writer,
                    val: s.val.clone(),
                });
            }
            if !inserted {
                for p in pieces {
                    next.push(Seg {
                        start: p.start + off,
                        end: p.end + off,
                        writer: p.writer,
                        val: p.val.clone(),
                    });
                }
                inserted = true;
            }
            if s.end > end {
                next.push(Seg {
                    start: end,
                    end: s.end,
                    writer: s.writer,
                    val: s.val,
                });
            }
        }
        if !inserted {
            for p in pieces {
                next.push(Seg {
                    start: p.start + off,
                    end: p.end + off,
                    writer: p.writer,
                    val: p.val.clone(),
                });
            }
        }
        next.sort_by_key(|s| s.start);
        *segs = next;
    }
}

/// Shifts a value's terms for a move of `shift = dst_off - src_off`
/// bytes and stamps still-unsited terms with the moving instruction.
/// `shift == 0` with fully-sited terms reuses the interned value.
fn moved_value(v: &Rc<Value>, shift: i64, site: Site) -> Rc<Value> {
    if shift == 0 && v.terms.iter().all(|t| t.site.is_some()) {
        return Rc::clone(v);
    }
    let mut terms: Vec<Term> = v
        .terms
        .iter()
        .map(|t| Term {
            src: t.src,
            delta: t.delta - shift,
            site: t.site.or(Some(site)),
        })
        .collect();
    terms.sort_unstable();
    Rc::new(Value { terms })
}

/// Propagates a read piece through a move: data shifts, staleness keeps
/// (or acquires) its origin.
fn moved_piece(p: &Seg, shift: i64, site: Site) -> SegVal {
    match &p.val {
        SegVal::Data(v) => SegVal::Data(moved_value(v, shift, site)),
        SegVal::Stale { origin } => SegVal::Stale {
            origin: origin.or(Some(site)),
        },
    }
}

/// Multiset union of two piece values; stale absorbs.
fn union_val(a: &SegVal, b: &SegVal, site: Site) -> SegVal {
    match (a, b) {
        (SegVal::Stale { origin }, other) | (other, SegVal::Stale { origin }) => {
            let o2 = match other {
                SegVal::Stale { origin } => *origin,
                SegVal::Data(_) => None,
            };
            SegVal::Stale {
                origin: origin.or(o2).or(Some(site)),
            }
        }
        (SegVal::Data(x), SegVal::Data(y)) => {
            let mut terms: Vec<Term> = Vec::with_capacity(x.terms.len() + y.terms.len());
            terms.extend(x.terms.iter().map(|t| Term {
                site: t.site.or(Some(site)),
                ..*t
            }));
            terms.extend(y.terms.iter().map(|t| Term {
                site: t.site.or(Some(site)),
                ..*t
            }));
            terms.sort_unstable();
            SegVal::Data(Rc::new(Value { terms }))
        }
    }
}

/// Piecewise union of two relative piece lists covering `[0, len)`,
/// written into `out`.
fn union_pieces(a: &[Seg], b: &[Seg], len: usize, site: Site, out: &mut Vec<Seg>) {
    out.clear();
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut cursor = 0usize;
    while cursor < len {
        let pa = &a[ia];
        let pb = &b[ib];
        let hi = pa.end.min(pb.end);
        out.push(Seg {
            start: cursor,
            end: hi,
            writer: Some(site),
            val: union_val(&pa.val, &pb.val, site),
        });
        cursor = hi;
        if pa.end == hi {
            ia += 1;
        }
        if pb.end == hi {
            ib += 1;
        }
    }
}

/// Runs the provenance machine over `order` (happens-before-consistent
/// `(thread, event)` pairs) and checks every member's output against the
/// spec, appending at most one finding per member.
pub(crate) fn check(
    model: &Model,
    order: &[(usize, usize)],
    spec: &CollectiveSpec,
    findings: &mut Vec<VerifyError>,
) {
    let mut st = State::new(spec);
    let mut spieces: Vec<Seg> = Vec::new();
    for &(t, i) in order {
        let ev = &model.threads[t].events[i];
        let Some(op) = &ev.sem else { continue };
        let site = ev.site;
        match op {
            SemOp::Move {
                src: (sb, so),
                dst: (db, doff),
                bytes,
            } => {
                st.read_into(*sb, *so, *bytes, &mut spieces);
                let shift = *doff as i64 - *so as i64;
                let moved: Vec<Seg> = spieces
                    .iter()
                    .map(|p| Seg {
                        start: p.start,
                        end: p.end,
                        writer: Some(site),
                        val: moved_piece(p, shift, site),
                    })
                    .collect();
                st.write(*db, *doff, *bytes, &moved);
            }
            SemOp::Accum {
                src: (sb, so),
                dst: (db, doff),
                bytes,
            } => {
                st.read_into(*sb, *so, *bytes, &mut spieces);
                let shift = *doff as i64 - *so as i64;
                let incoming: Vec<Seg> = spieces
                    .iter()
                    .map(|p| Seg {
                        start: p.start,
                        end: p.end,
                        writer: Some(site),
                        val: moved_piece(p, shift, site),
                    })
                    .collect();
                st.read_into(*db, *doff, *bytes, &mut spieces);
                let mut merged = std::mem::take(&mut st.merged);
                union_pieces(&incoming, &spieces, *bytes, site, &mut merged);
                st.write(*db, *doff, *bytes, &merged);
                st.merged = merged;
            }
            SemOp::Reduce2 {
                a: (ab, ao),
                b: (bb, bo),
                dst: (db, doff),
                bytes,
            } => {
                st.read_into(*ab, *ao, *bytes, &mut spieces);
                let shift_a = *doff as i64 - *ao as i64;
                let ap: Vec<Seg> = spieces
                    .iter()
                    .map(|p| Seg {
                        start: p.start,
                        end: p.end,
                        writer: Some(site),
                        val: moved_piece(p, shift_a, site),
                    })
                    .collect();
                st.read_into(*bb, *bo, *bytes, &mut spieces);
                let shift_b = *doff as i64 - *bo as i64;
                let bp: Vec<Seg> = spieces
                    .iter()
                    .map(|p| Seg {
                        start: p.start,
                        end: p.end,
                        writer: Some(site),
                        val: moved_piece(p, shift_b, site),
                    })
                    .collect();
                let mut merged = std::mem::take(&mut st.merged);
                union_pieces(&ap, &bp, *bytes, site, &mut merged);
                st.write(*db, *doff, *bytes, &merged);
                st.merged = merged;
            }
            SemOp::ReduceAll {
                srcs,
                dst: (db, doff),
                bytes,
            } => {
                let mut acc: Vec<Seg> = Vec::new();
                for (k, (sb, so)) in srcs.iter().enumerate() {
                    st.read_into(*sb, *so, *bytes, &mut spieces);
                    let shift = *doff as i64 - *so as i64;
                    let p: Vec<Seg> = spieces
                        .iter()
                        .map(|p| Seg {
                            start: p.start,
                            end: p.end,
                            writer: Some(site),
                            val: moved_piece(p, shift, site),
                        })
                        .collect();
                    if k == 0 {
                        acc = p;
                    } else {
                        let mut merged = std::mem::take(&mut st.merged);
                        union_pieces(&acc, &p, *bytes, site, &mut merged);
                        acc.clone_from(&merged);
                        st.merged = merged;
                    }
                }
                st.write(*db, *doff, *bytes, &acc);
            }
            SemOp::Replicate {
                src: (sb, so),
                dsts,
                bytes,
            } => {
                st.read_into(*sb, *so, *bytes, &mut spieces);
                let src_pieces = spieces.clone();
                for (db, doff) in dsts {
                    let shift = *doff as i64 - *so as i64;
                    let moved: Vec<Seg> = src_pieces
                        .iter()
                        .map(|p| Seg {
                            start: p.start,
                            end: p.end,
                            writer: Some(site),
                            val: moved_piece(p, shift, site),
                        })
                        .collect();
                    st.write(*db, *doff, *bytes, &moved);
                }
            }
        }
    }
    check_outputs(&st, spec, findings);
}

/// `(expected source position, expected source byte delta, multiset?)`
/// for each checked output range of one member.
struct Want {
    out_start: usize,
    out_len: usize,
    /// `Some(pos)` — exactly one term from member `pos`; `None` — one
    /// term from *every* member (reduction).
    single: Option<u32>,
    delta: i64,
}

fn check_outputs(st: &State, spec: &CollectiveSpec, findings: &mut Vec<VerifyError>) {
    let k = spec.members.len();
    let mut pieces: Vec<Seg> = Vec::new();
    for (pos, m) in spec.members.iter().enumerate() {
        let wants: Vec<Want> = match &spec.kind {
            CollectiveKind::AllReduce { bytes } => vec![Want {
                out_start: 0,
                out_len: *bytes,
                single: None,
                delta: 0,
            }],
            CollectiveKind::AllGather { bytes } => (0..k)
                .map(|s| Want {
                    out_start: s * bytes,
                    out_len: *bytes,
                    single: Some(s as u32),
                    delta: -((s * bytes) as i64),
                })
                .collect(),
            CollectiveKind::ReduceScatter { shards, .. } => {
                let (off, len) = shards[pos];
                vec![Want {
                    out_start: 0,
                    out_len: len,
                    single: None,
                    delta: off as i64,
                }]
            }
            CollectiveKind::Broadcast { bytes, root } => vec![Want {
                out_start: 0,
                out_len: *bytes,
                single: Some(*root as u32),
                delta: 0,
            }],
            CollectiveKind::AllToAll { bytes } => (0..k)
                .map(|i| Want {
                    out_start: i * bytes,
                    out_len: *bytes,
                    single: Some(i as u32),
                    delta: (pos as i64 - i as i64) * *bytes as i64,
                })
                .collect(),
        };
        'member: for w in &wants {
            st.read_into(m.output, w.out_start, w.out_len, &mut pieces);
            for p in &pieces {
                let range = (p.start + w.out_start, p.end + w.out_start);
                if let Some(f) = check_piece(spec, pos, m, range, p, w) {
                    findings.push(f);
                    break 'member;
                }
            }
        }
    }
}

/// Checks one constant-value piece of an output range; returns the
/// finding for the first divergence, if any.
fn check_piece(
    spec: &CollectiveSpec,
    _pos: usize,
    m: &SpecMember,
    range: (usize, usize),
    p: &Seg,
    w: &Want,
) -> Option<VerifyError> {
    let v = match &p.val {
        SegVal::Stale { origin } => {
            return Some(VerifyError::StaleOutput {
                rank: m.rank,
                buf: m.output,
                range,
                writer: p.writer,
                origin: *origin,
            })
        }
        SegVal::Data(v) => v,
    };
    let member_rank = |src: u32| spec.members[src as usize].rank;
    let src_byte = |delta: i64| (range.0 as i64 + delta).max(0) as usize;
    // Any member contributing twice is a duplicate regardless of layout.
    for pair in v.terms.windows(2) {
        if pair[0].src == pair[1].src {
            return Some(VerifyError::DuplicateContribution {
                rank: m.rank,
                buf: m.output,
                range,
                dup: member_rank(pair[0].src),
                first: pair[0].site,
                second: pair[1].site,
            });
        }
    }
    match w.single {
        Some(want_src) => {
            // Exactly one term, from `want_src`, at the expected offset.
            if v.terms.len() > 1 {
                let extra = v
                    .terms
                    .iter()
                    .find(|t| t.src != want_src)
                    .unwrap_or(&v.terms[0]);
                return Some(VerifyError::DuplicateContribution {
                    rank: m.rank,
                    buf: m.output,
                    range,
                    dup: member_rank(extra.src),
                    first: v.terms[0].site,
                    second: v.terms[1].site,
                });
            }
            let t = &v.terms[0];
            if t.src != want_src || t.delta != w.delta {
                return Some(VerifyError::WrongPlacement {
                    rank: m.rank,
                    buf: m.output,
                    range,
                    want: (member_rank(want_src), src_byte(w.delta)),
                    got: (member_rank(t.src), src_byte(t.delta)),
                    writer: p.writer,
                    origin: t.site,
                });
            }
            None
        }
        None => {
            // One term per member, all at the expected shard offset.
            for t in &v.terms {
                if t.delta != w.delta {
                    return Some(VerifyError::WrongPlacement {
                        rank: m.rank,
                        buf: m.output,
                        range,
                        want: (member_rank(t.src), src_byte(w.delta)),
                        got: (member_rank(t.src), src_byte(t.delta)),
                        writer: p.writer,
                        origin: t.site,
                    });
                }
            }
            if v.terms.len() < spec.members.len() {
                let present: Vec<u32> = v.terms.iter().map(|t| t.src).collect();
                let missing = (0..spec.members.len() as u32)
                    .find(|s| !present.contains(s))
                    .unwrap_or(0);
                return Some(VerifyError::MissingContribution {
                    rank: m.rank,
                    buf: m.output,
                    range,
                    missing: member_rank(missing),
                    writer: p.writer,
                    present: v.terms.iter().find_map(|t| t.site),
                });
            }
            None
        }
    }
}
